package floorplan

import (
	"math"
	"testing"
	"testing/quick"
)

func TestBlockGeometry(t *testing.T) {
	b := Block{X: 1, Y: 2, W: 3, H: 4, Power: 24}
	if b.Area() != 12 {
		t.Fatalf("Area = %v", b.Area())
	}
	if b.Density() != 2 {
		t.Fatalf("Density = %v", b.Density())
	}
	cx, cy := b.Center()
	if cx != 2.5 || cy != 4 {
		t.Fatalf("Center = %v,%v", cx, cy)
	}
	if (Block{}).Density() != 0 {
		t.Fatal("zero block density should be 0")
	}
}

func TestOverlapDetection(t *testing.T) {
	f := &Floorplan{
		Name: "t", DieW: 0.01, DieH: 0.01, Dies: 2,
		Blocks: []Block{
			{Name: "a", X: 0, Y: 0, W: 0.005, H: 0.005, Die: 0},
			{Name: "b", X: 0.002, Y: 0.002, W: 0.005, H: 0.005, Die: 0},
		},
	}
	if f.Validate() == nil {
		t.Fatal("overlap not detected")
	}
	// Same rectangles on different dies are fine.
	f.Blocks[1].Die = 1
	if err := f.Validate(); err != nil {
		t.Fatalf("cross-die overlap rejected: %v", err)
	}
	// Touching edges are fine.
	f.Blocks[1] = Block{Name: "b", X: 0.005, Y: 0, W: 0.005, H: 0.005, Die: 0}
	if err := f.Validate(); err != nil {
		t.Fatalf("abutting blocks rejected: %v", err)
	}
}

func TestValidateBounds(t *testing.T) {
	f := &Floorplan{
		Name: "t", DieW: 0.01, DieH: 0.01, Dies: 1,
		Blocks: []Block{{Name: "a", X: 0.008, Y: 0, W: 0.005, H: 0.005}},
	}
	if f.Validate() == nil {
		t.Fatal("out-of-bounds block accepted")
	}
	f.Blocks[0] = Block{Name: "a", X: 0, Y: 0, W: 0.005, H: 0.005, Die: 3}
	if f.Validate() == nil {
		t.Fatal("bad die index accepted")
	}
	f.Blocks[0] = Block{Name: "a", X: 0, Y: 0, W: 0, H: 0.005}
	if f.Validate() == nil {
		t.Fatal("zero-width block accepted")
	}
}

func TestPresetsValid(t *testing.T) {
	presets := []*Floorplan{
		Core2DuoPlanar(), Core2DuoStacked12MB(), Core2DuoStacked32MB(),
		Core2DuoStacked64MB(), Pentium4Planar(), Pentium4ThreeD(),
		Pentium4WorstCase(),
	}
	for _, f := range presets {
		if err := f.Validate(); err != nil {
			t.Errorf("%s: %v", f.Name, err)
		}
	}
}

func TestPresetPowerBudgets(t *testing.T) {
	cases := []struct {
		fp   *Floorplan
		want float64
	}{
		{Core2DuoPlanar(), 92},
		{Core2DuoStacked12MB(), 106},
		{Core2DuoStacked64MB(), 98.2},
		{Pentium4Planar(), 147},
		{Pentium4WorstCase(), 147},
	}
	for _, c := range cases {
		if got := c.fp.TotalPower(); math.Abs(got-c.want) > 1e-9 {
			t.Errorf("%s: total power %.2f, want %.2f", c.fp.Name, got, c.want)
		}
	}
	// 32MB option: slightly below baseline (L2 removed, tags + DRAM added).
	p32 := Core2DuoStacked32MB().TotalPower()
	if p32 >= 92 || p32 < 88 {
		t.Errorf("32MB option power %.2f, want slightly below 92", p32)
	}
	// 3D P4: 15% power saving.
	p3d := Pentium4ThreeD().TotalPower()
	if math.Abs(p3d-147*0.85) > 0.5 {
		t.Errorf("3D P4 power %.2f, want ~%.2f", p3d, 147*0.85)
	}
}

func TestCoresMatchPaperHotspots(t *testing.T) {
	f := Core2DuoPlanar()
	// The paper: greatest power concentration in FP, RS, LdSt.
	avg := f.TotalPower() / (f.DieW * f.DieH)
	for _, name := range []string{"FP0", "RS0", "LdSt0"} {
		b, ok := f.Block(name)
		if !ok {
			t.Fatalf("block %s missing", name)
		}
		if b.Density() < 2*avg {
			t.Errorf("%s density %.3g not a hotspot (avg %.3g)", name, b.Density(), avg)
		}
	}
	// The cache is the coolest large structure.
	l2, _ := f.Block("L2")
	if l2.Density() > avg/2 {
		t.Errorf("L2 density %.3g too hot", l2.Density())
	}
}

func TestPowerMapConservesPower(t *testing.T) {
	for _, f := range []*Floorplan{Core2DuoPlanar(), Pentium4Planar(), Pentium4ThreeD()} {
		total := 0.0
		for d := 0; d < f.Dies; d++ {
			total += f.PowerMap(d, 48, 48).Total()
		}
		if math.Abs(total-f.TotalPower()) > 0.01*f.TotalPower() {
			t.Errorf("%s: rasterized %.2f W, blocks %.2f W", f.Name, total, f.TotalPower())
		}
	}
}

func TestPowerMapConservationQuick(t *testing.T) {
	f := func(xr, yr, wr, hr uint8, p uint8) bool {
		die := 0.01
		x := float64(xr) / 255 * die * 0.8
		y := float64(yr) / 255 * die * 0.8
		w := 0.001 + float64(wr)/255*(die-x-0.001)
		h := 0.001 + float64(hr)/255*(die-y-0.001)
		fp := &Floorplan{
			Name: "q", DieW: die, DieH: die, Dies: 1,
			Blocks: []Block{{Name: "b", X: x, Y: y, W: w, H: h, Power: float64(p)}},
		}
		if fp.Validate() != nil {
			return true // skip degenerate
		}
		got := fp.PowerMap(0, 17, 23).Total()
		return math.Abs(got-float64(p)) < 1e-6*math.Max(1, float64(p))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestStackedDensityRatios(t *testing.T) {
	const nx, ny = 64, 64
	planar := Pentium4Planar().PeakDensity(0, nx, ny)

	// The tuned 3D floorplan lands near the paper's 1.3x increase.
	three := Pentium4ThreeD().StackedPeakDensity(nx, ny)
	ratio := three / planar
	if ratio < 1.1 || ratio > 1.5 {
		t.Errorf("3D density ratio = %.3f, want ~1.3", ratio)
	}

	// The worst case is exactly 2x by construction.
	worst := Pentium4WorstCase().StackedPeakDensity(nx, ny)
	if r := worst / planar; math.Abs(r-2) > 0.1 {
		t.Errorf("worst-case density ratio = %.3f, want 2.0", r)
	}
}

func TestWireLengthShrinksIn3D(t *testing.T) {
	nets := LoadToUseNets()
	planar, err := Pentium4Planar().WireLength(nets)
	if err != nil {
		t.Fatal(err)
	}
	three, err := Pentium4ThreeD().WireLength(nets)
	if err != nil {
		t.Fatal(err)
	}
	// The fold must substantially shorten the weighted wire length —
	// that is the premise of Logic+Logic stacking.
	if three > 0.65*planar {
		t.Errorf("3D wire length %.4f not well below planar %.4f", three, planar)
	}
	// The two highlighted paths (load-to-use, FP register read) all but
	// vanish: the fold places them directly above each other.
	pathLen := func(f *Floorplan, a, b string) float64 {
		l, err := f.WireLength([]Net{{A: a, B: b, Weight: 1}})
		if err != nil {
			t.Fatal(err)
		}
		return l
	}
	if l3, l2 := pathLen(Pentium4ThreeD(), "D$", "F"), pathLen(Pentium4Planar(), "D$", "F"); l3 > 0.3*l2 {
		t.Errorf("load-to-use path %.5f not <30%% of planar %.5f", l3, l2)
	}
	if l3, l2 := pathLen(Pentium4ThreeD(), "RF", "FP"), pathLen(Pentium4Planar(), "RF", "FP"); l3 > 0.3*l2 {
		t.Errorf("FP read path %.5f not <30%% of planar %.5f", l3, l2)
	}
}

func TestWireLengthMissingBlock(t *testing.T) {
	f := Core2DuoPlanar()
	if _, err := f.WireLength([]Net{{A: "nope", B: "L2"}}); err == nil {
		t.Fatal("missing block accepted")
	}
}

func TestScalePowerAndClone(t *testing.T) {
	f := Core2DuoPlanar()
	g := f.Clone()
	g.ScalePower(0.5)
	if math.Abs(g.TotalPower()-46) > 1e-9 {
		t.Fatalf("scaled power = %v", g.TotalPower())
	}
	if math.Abs(f.TotalPower()-92) > 1e-9 {
		t.Fatal("Clone aliases blocks")
	}
}

func TestDensityOutliers(t *testing.T) {
	f := Pentium4Planar()
	out := f.DensityOutliers(1.5)
	if len(out) == 0 {
		t.Fatal("no outliers found in a floorplan with hot blocks")
	}
	// The scheduler is the planar floorplan's hottest block (the paper
	// names the area over the instruction scheduler as the hot spot).
	if out[0] != "sched" {
		t.Errorf("hottest outlier = %s, want sched", out[0])
	}
}

func TestDiePower(t *testing.T) {
	f := Core2DuoStacked12MB()
	if math.Abs(f.DiePower(0)-92) > 1e-9 {
		t.Errorf("die0 power = %v", f.DiePower(0))
	}
	if math.Abs(f.DiePower(1)-14) > 1e-9 {
		t.Errorf("die1 power = %v", f.DiePower(1))
	}
	// Paper: the highest-power die sits next to the heat sink (die 0).
	if f.DiePower(1) > f.DiePower(0) {
		t.Error("hot die not adjacent to heat sink")
	}
}

func TestThreeDFoldsCriticalPairs(t *testing.T) {
	f := Pentium4ThreeD()
	dcache, _ := f.Block("D$")
	fblk, _ := f.Block("F")
	if dcache.Die == fblk.Die {
		t.Error("D$ and F on the same die; the fold must separate them")
	}
	// D$ directly overlaps F laterally (Figure 10).
	if !(Block{X: dcache.X, Y: dcache.Y, W: dcache.W, H: dcache.H, Die: fblk.Die}).overlaps(fblk) {
		t.Error("D$ does not overlap F laterally")
	}
	rf, _ := f.Block("RF")
	fp, _ := f.Block("FP")
	if rf.Die == fp.Die {
		t.Error("RF and FP on the same die")
	}
}
