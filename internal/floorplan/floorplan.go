// Package floorplan models block-level die floorplans: block
// placement, power assignment, rasterization into thermal power maps,
// Manhattan wire-length estimation, and the folding of a planar
// floorplan onto two stacked dies (the paper's Logic+Logic study,
// Figures 9 and 10).
package floorplan

import (
	"fmt"
	"math"
	"sort"

	"diestack/internal/thermal"
)

// Block is one functional unit placed on a die. Coordinates are in
// meters with the origin at the die's lower-left corner.
type Block struct {
	Name       string
	X, Y, W, H float64
	// Power is the block's dissipation in watts.
	Power float64
	// Die is the stacking layer: 0 is next to the heat sink. Planar
	// floorplans use die 0 only.
	Die int
}

// Area returns the block area in m².
func (b Block) Area() float64 { return b.W * b.H }

// Density returns the block's power density in W/m².
func (b Block) Density() float64 {
	a := b.Area()
	if a == 0 {
		return 0
	}
	return b.Power / a
}

// Center returns the block's center coordinates.
func (b Block) Center() (x, y float64) { return b.X + b.W/2, b.Y + b.H/2 }

// overlaps reports whether two blocks on the same die intersect with
// positive area.
func (b Block) overlaps(o Block) bool {
	if b.Die != o.Die {
		return false
	}
	const eps = 1e-12
	return b.X+b.W > o.X+eps && o.X+o.W > b.X+eps &&
		b.Y+b.H > o.Y+eps && o.Y+o.H > b.Y+eps
}

// Floorplan is a placed set of blocks over one or more dies of equal
// lateral dimensions.
type Floorplan struct {
	Name string
	// DieW, DieH are the lateral die dimensions in meters.
	DieW, DieH float64
	// Dies is the number of stacked dies (1 or 2 here).
	Dies   int
	Blocks []Block
}

// Validate checks bounds, die indices, and same-die overlap.
func (f *Floorplan) Validate() error {
	if f.DieW <= 0 || f.DieH <= 0 {
		return fmt.Errorf("floorplan %s: non-positive die size", f.Name)
	}
	if f.Dies < 1 {
		return fmt.Errorf("floorplan %s: Dies = %d", f.Name, f.Dies)
	}
	const eps = 1e-9
	for i, b := range f.Blocks {
		if b.W <= 0 || b.H <= 0 {
			return fmt.Errorf("floorplan %s: block %s has non-positive size", f.Name, b.Name)
		}
		if b.Power < 0 {
			return fmt.Errorf("floorplan %s: block %s has negative power", f.Name, b.Name)
		}
		if b.Die < 0 || b.Die >= f.Dies {
			return fmt.Errorf("floorplan %s: block %s on die %d of %d", f.Name, b.Name, b.Die, f.Dies)
		}
		if b.X < -eps || b.Y < -eps || b.X+b.W > f.DieW+eps || b.Y+b.H > f.DieH+eps {
			return fmt.Errorf("floorplan %s: block %s out of bounds", f.Name, b.Name)
		}
		for j := i + 1; j < len(f.Blocks); j++ {
			if b.overlaps(f.Blocks[j]) {
				return fmt.Errorf("floorplan %s: blocks %s and %s overlap", f.Name, b.Name, f.Blocks[j].Name)
			}
		}
	}
	return nil
}

// TotalPower sums all blocks in watts.
func (f *Floorplan) TotalPower() float64 {
	sum := 0.0
	for _, b := range f.Blocks {
		sum += b.Power
	}
	return sum
}

// DiePower sums block power on one die.
func (f *Floorplan) DiePower(die int) float64 {
	sum := 0.0
	for _, b := range f.Blocks {
		if b.Die == die {
			sum += b.Power
		}
	}
	return sum
}

// Block returns the named block, or false.
func (f *Floorplan) Block(name string) (Block, bool) {
	for _, b := range f.Blocks {
		if b.Name == name {
			return b, true
		}
	}
	return Block{}, false
}

// ScalePower multiplies every block's power by factor, returning the
// receiver for chaining. Used for voltage/frequency scaling studies.
func (f *Floorplan) ScalePower(factor float64) *Floorplan {
	for i := range f.Blocks {
		f.Blocks[i].Power *= factor
	}
	return f
}

// Clone returns a deep copy.
func (f *Floorplan) Clone() *Floorplan {
	g := *f
	g.Blocks = append([]Block(nil), f.Blocks...)
	return &g
}

// PowerMap rasterizes one die's blocks onto an nx-by-ny thermal grid
// covering exactly the die. Block power is distributed over the grid
// cells the block covers, in proportion to the covered area of each
// cell.
func (f *Floorplan) PowerMap(die, nx, ny int) *thermal.PowerMap {
	return f.PowerMapPlaced(die, nx, ny, f.DieW, f.DieH, 0, 0)
}

// PowerMapPlaced rasterizes one die's blocks onto an nx-by-ny grid
// covering a pkgW x pkgH package column, with the die's origin at
// (offX, offY) within the column. Thermal stacks are solved on the
// package column (the cooling assembly is package-sized regardless of
// die size), so power maps must be placed into it.
func (f *Floorplan) PowerMapPlaced(die, nx, ny int, pkgW, pkgH, offX, offY float64) *thermal.PowerMap {
	pm := thermal.NewPowerMap(nx, ny)
	cw := pkgW / float64(nx)
	ch := pkgH / float64(ny)
	for _, b := range f.Blocks {
		if b.Die != die || b.Power == 0 {
			continue
		}
		bx := b.X + offX
		by := b.Y + offY
		density := b.Power / b.Area()
		x0 := int(bx / cw)
		x1 := int(math.Ceil((bx + b.W) / cw))
		y0 := int(by / ch)
		y1 := int(math.Ceil((by + b.H) / ch))
		for y := y0; y < y1 && y < ny; y++ {
			if y < 0 {
				continue
			}
			for x := x0; x < x1 && x < nx; x++ {
				if x < 0 {
					continue
				}
				// Intersection of the cell with the block.
				ix := math.Min(bx+b.W, float64(x+1)*cw) - math.Max(bx, float64(x)*cw)
				iy := math.Min(by+b.H, float64(y+1)*ch) - math.Max(by, float64(y)*ch)
				if ix > 0 && iy > 0 {
					pm.Add(x, y, density*ix*iy)
				}
			}
		}
	}
	return pm
}

// PowerMapCentered places the die centered in a pkgW x pkgH package
// column (the standard placement for the thermal stacks).
func (f *Floorplan) PowerMapCentered(die, nx, ny int, pkgW, pkgH float64) *thermal.PowerMap {
	return f.PowerMapPlaced(die, nx, ny, pkgW, pkgH, (pkgW-f.DieW)/2, (pkgH-f.DieH)/2)
}

// PeakDensity returns the highest per-cell power density across a
// die's rasterized map, in W/m².
func (f *Floorplan) PeakDensity(die, nx, ny int) float64 {
	return f.PowerMap(die, nx, ny).MaxDensity(f.DieW, f.DieH)
}

// StackedPeakDensity rasterizes every die and returns the peak of the
// summed (through-stack) density in W/m² — the quantity the paper's
// "power density increase" refers to for 3D stacks.
func (f *Floorplan) StackedPeakDensity(nx, ny int) float64 {
	sum := thermal.NewPowerMap(nx, ny)
	for d := 0; d < f.Dies; d++ {
		pm := f.PowerMap(d, nx, ny)
		for y := 0; y < ny; y++ {
			for x := 0; x < nx; x++ {
				sum.Add(x, y, pm.At(x, y))
			}
		}
	}
	return sum.MaxDensity(f.DieW, f.DieH)
}

// Net is a weighted two-point connection between named blocks; Weight
// is the relative signal count.
type Net struct {
	A, B   string
	Weight float64
}

// WireLength estimates the total weighted Manhattan wire length of the
// nets over the floorplan, in meter·weight units. Connections between
// dies cost only the lateral distance — the vertical die-to-die via
// is electrically negligible (the paper: d2d via RC is about a third
// of a conventional via stack).
func (f *Floorplan) WireLength(nets []Net) (float64, error) {
	total := 0.0
	for _, n := range nets {
		a, okA := f.Block(n.A)
		b, okB := f.Block(n.B)
		if !okA || !okB {
			return 0, fmt.Errorf("floorplan %s: net %s-%s references missing block", f.Name, n.A, n.B)
		}
		ax, ay := a.Center()
		bx, by := b.Center()
		w := n.Weight
		if w == 0 {
			w = 1
		}
		total += w * (math.Abs(ax-bx) + math.Abs(ay-by))
	}
	return total, nil
}

// DensityOutliers returns the names of blocks whose density exceeds
// ratio times the floorplan's average density, sorted hottest first.
// This drives the paper's iterative place-observe-repair loop.
func (f *Floorplan) DensityOutliers(ratio float64) []string {
	avg := f.TotalPower() / (f.DieW * f.DieH * float64(f.Dies))
	var out []Block
	for _, b := range f.Blocks {
		if b.Density() > ratio*avg {
			out = append(out, b)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Density() > out[j].Density() })
	names := make([]string, len(out))
	for i, b := range out {
		names[i] = b.Name
	}
	return names
}
