package floorplan

import (
	"math"
	"strings"
	"testing"
)

func p4FoldOptions() FoldOptions {
	return FoldOptions{
		DensityTarget: 1.35,
		PowerFactor:   Pentium4ThreeDPowerFactor,
		CriticalNets: []Net{
			{A: "D$", B: "F", Weight: 3},
			{A: "RF", B: "FP", Weight: 2},
		},
	}
}

func TestAutoFoldProducesValidPlan(t *testing.T) {
	planar := Pentium4Planar()
	folded, err := AutoFold(planar, p4FoldOptions())
	if err != nil {
		t.Fatal(err)
	}
	if err := folded.Validate(); err != nil {
		t.Fatal(err)
	}
	if folded.Dies != 2 {
		t.Fatalf("Dies = %d", folded.Dies)
	}
	// Every block survives (possibly split into /k parts) with its
	// total area intact.
	for _, b := range planar.Blocks {
		var area float64
		for _, fb := range folded.Blocks {
			if fb.Name == b.Name || strings.HasPrefix(fb.Name, b.Name+"/") {
				area += fb.Area()
			}
		}
		if math.Abs(area-b.Area()) > 1e-12*math.Max(1, b.Area()) {
			t.Errorf("%s area changed: %g -> %g", b.Name, b.Area(), area)
		}
	}
	// Footprint is roughly half the planar area.
	ratio := (folded.DieW * folded.DieH) / (planar.DieW * planar.DieH)
	if ratio < 0.5 || ratio > 0.62 {
		t.Errorf("footprint ratio %.3f, want ~0.55", ratio)
	}
	// Power carries the 15% saving.
	if math.Abs(folded.TotalPower()-planar.TotalPower()*0.85) > 0.5 {
		t.Errorf("folded power %.1f", folded.TotalPower())
	}
}

func TestAutoFoldMeetsDensityTarget(t *testing.T) {
	planar := Pentium4Planar()
	folded, err := AutoFold(planar, p4FoldOptions())
	if err != nil {
		t.Fatal(err)
	}
	const grid = 64
	ratio := folded.StackedPeakDensity(grid, grid) / planar.PeakDensity(0, grid, grid)
	if ratio > 1.5 {
		t.Errorf("density ratio %.2f exceeds target 1.35 (+ tolerance)", ratio)
	}
}

func TestAutoFoldSeparatesCriticalPairs(t *testing.T) {
	folded, err := AutoFold(Pentium4Planar(), p4FoldOptions())
	if err != nil {
		t.Fatal(err)
	}
	for _, pair := range [][2]string{{"D$", "F"}, {"RF", "FP"}} {
		a, _ := folded.Block(pair[0])
		b, _ := folded.Block(pair[1])
		if a.Die == b.Die {
			t.Errorf("%s and %s on the same die", pair[0], pair[1])
		}
		// Their centers sit close laterally (vertical adjacency).
		ax, ay := a.Center()
		bx, by := b.Center()
		d := math.Abs(ax-bx) + math.Abs(ay-by)
		if d > 0.004 {
			t.Errorf("%s-%s lateral distance %.4f m, want < 4 mm", pair[0], pair[1], d)
		}
	}
}

func TestAutoFoldShortensCriticalWire(t *testing.T) {
	planar := Pentium4Planar()
	nets := LoadToUseNets()
	folded, err := AutoFold(planar, p4FoldOptions())
	if err != nil {
		t.Fatal(err)
	}
	before, err := planar.WireLength(nets)
	if err != nil {
		t.Fatal(err)
	}
	after, err := folded.WireLength(nets)
	if err != nil {
		t.Fatal(err)
	}
	if after >= before {
		t.Errorf("fold did not shorten wire: %.4f -> %.4f", before, after)
	}
}

func TestAutoFoldOnCore2(t *testing.T) {
	// A different topology entirely: the dual-core die with its big
	// cache. The cache is the natural die-1 occupant.
	planar := Core2DuoPlanar()
	folded, err := AutoFold(planar, FoldOptions{
		DensityTarget: 1.4,
		CriticalNets:  []Net{{A: "L1D0", B: "L2"}, {A: "L1D1", B: "L2"}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := folded.Validate(); err != nil {
		t.Fatal(err)
	}
	if folded.DiePower(0)+folded.DiePower(1) != planar.TotalPower() {
		t.Errorf("power not conserved: %v", folded.TotalPower())
	}
}

func TestAutoFoldRejectsBadInput(t *testing.T) {
	planar := Pentium4Planar()
	if _, err := AutoFold(Pentium4ThreeD(), FoldOptions{}); err == nil {
		t.Error("non-planar input accepted")
	}
	bad := planar.Clone()
	bad.Blocks[0].W = -1
	if _, err := AutoFold(bad, FoldOptions{}); err == nil {
		t.Error("invalid input accepted")
	}
	if _, err := AutoFold(planar, FoldOptions{CriticalNets: []Net{{A: "nope", B: "F"}}}); err == nil {
		t.Error("missing critical-net block accepted")
	}
}

func TestAutoFoldNoCriticalNets(t *testing.T) {
	folded, err := AutoFold(Pentium4Planar(), FoldOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if err := folded.Validate(); err != nil {
		t.Fatal(err)
	}
	if !strings.HasSuffix(folded.Name, "-autofold") {
		t.Errorf("name = %q", folded.Name)
	}
}

func TestShelfPackOverflow(t *testing.T) {
	blocks := []Block{
		{Name: "a", W: 0.009, H: 0.009, Power: 1},
		{Name: "b", W: 0.009, H: 0.009, Power: 1},
	}
	if _, err := shelfPack(blocks, 0.01, 0.01); err == nil {
		t.Fatal("overflow not detected")
	}
}

func TestAutoFoldRepairLowersDensity(t *testing.T) {
	// Compare a fold with the repair loop disabled (MaxRepairIters
	// pinned to a single no-op round via a huge target) against the
	// repaired fold: the repaired one must not be denser.
	planar := Pentium4Planar()
	loose, err := AutoFold(planar, FoldOptions{DensityTarget: 100})
	if err != nil {
		t.Fatal(err)
	}
	tight, err := AutoFold(planar, FoldOptions{DensityTarget: 1.2})
	if err != nil {
		t.Fatal(err)
	}
	const grid = 64
	if tight.StackedPeakDensity(grid, grid) > loose.StackedPeakDensity(grid, grid)+1 {
		t.Errorf("repair raised density: %.0f vs %.0f",
			tight.StackedPeakDensity(grid, grid), loose.StackedPeakDensity(grid, grid))
	}
}
