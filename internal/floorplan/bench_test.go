package floorplan

import "testing"

func BenchmarkPowerMapRaster(b *testing.B) {
	fp := Core2DuoPlanar()
	for i := 0; i < b.N; i++ {
		pm := fp.PowerMap(0, 64, 64)
		if pm.Total() < 91 {
			b.Fatal("power lost")
		}
	}
}

func BenchmarkAutoFold(b *testing.B) {
	planar := Pentium4Planar()
	opt := FoldOptions{
		DensityTarget: 1.35,
		PowerFactor:   Pentium4ThreeDPowerFactor,
		CriticalNets:  []Net{{A: "D$", B: "F"}, {A: "RF", B: "FP"}},
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := AutoFold(planar, opt); err != nil {
			b.Fatal(err)
		}
	}
}
