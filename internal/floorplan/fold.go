package floorplan

import (
	"fmt"
	"math"
	"sort"

	"diestack/internal/thermal"
)

// FoldOptions tunes AutoFold.
type FoldOptions struct {
	// DensityTarget caps the folded design's through-stack peak power
	// density, as a multiple of the planar floorplan's peak (the paper
	// lands at ~1.3x). Default 1.35.
	DensityTarget float64
	// PowerFactor scales every block's power in the folded design (the
	// paper's 15% saving -> 0.85). Default 1.
	PowerFactor float64
	// CriticalNets lists connections whose endpoints should end up on
	// opposite dies, vertically overlapped — the wire the fold exists
	// to remove. Defaults to nothing.
	CriticalNets []Net
	// Grid is the density raster resolution (default 64).
	Grid int
	// AreaSlack is extra footprint area beyond half the planar die
	// (default 0.10: 10% whitespace for routability).
	AreaSlack float64
	// MaxRepairIters bounds the place-observe-repair loop (default 64).
	MaxRepairIters int
}

func (o FoldOptions) withDefaults() FoldOptions {
	if o.DensityTarget == 0 {
		o.DensityTarget = 1.35
	}
	if o.PowerFactor == 0 {
		o.PowerFactor = 1
	}
	if o.Grid == 0 {
		o.Grid = 64
	}
	if o.AreaSlack == 0 {
		o.AreaSlack = 0.10
	}
	if o.MaxRepairIters == 0 {
		o.MaxRepairIters = 64
	}
	return o
}

// AutoFold converts a planar floorplan into a two-die fold using the
// paper's methodology: halve the footprint, split the blocks across
// the dies with critical-net endpoints facing each other, then run the
// "simple iterative process of placing blocks, observing the new power
// densities and repairing outliers" until the through-stack peak
// density meets the target.
//
// The hand-crafted Pentium4ThreeD floorplan is the reference fold;
// AutoFold produces comparable results for arbitrary planar inputs.
func AutoFold(planar *Floorplan, opt FoldOptions) (*Floorplan, error) {
	if err := planar.Validate(); err != nil {
		return nil, fmt.Errorf("floorplan: AutoFold input: %w", err)
	}
	if planar.Dies != 1 {
		return nil, fmt.Errorf("floorplan: AutoFold needs a planar input, got %d dies", planar.Dies)
	}
	opt = opt.withDefaults()

	// Footprint: half the area plus slack, preserving the aspect ratio.
	shrink := math.Sqrt((1 + opt.AreaSlack) / 2)
	dieW := planar.DieW * shrink
	dieH := planar.DieH * shrink
	capArea := dieW * dieH
	maxPartArea := 0.4 * capArea

	// Identify the critical pairs. The hotter endpoint goes to die 0
	// (next to the heat sink), its mate directly above it on die 1.
	mate := map[string]string{} // die-0 block -> die-1 partner
	forced := map[string]int{}  // block -> forced die
	for _, n := range opt.CriticalNets {
		a, okA := planar.Block(n.A)
		bb, okB := planar.Block(n.B)
		if !okA || !okB {
			return nil, fmt.Errorf("floorplan: AutoFold critical net %s-%s names a missing block", n.A, n.B)
		}
		if a.Area() > maxPartArea || bb.Area() > maxPartArea {
			// A split block cannot anchor a vertical pairing; it will be
			// placed like any other block.
			continue
		}
		if _, done := forced[n.A]; done {
			continue
		}
		if _, done := forced[n.B]; done {
			continue
		}
		hot, cold := a, bb
		if bb.Density() > a.Density() {
			hot, cold = bb, a
		}
		forced[hot.Name] = 0
		forced[cold.Name] = 1
		mate[hot.Name] = cold.Name
	}

	// Split blocks too large for the halved footprint and reshape the
	// rest, preserving area (the paper's fold likewise re-aspects and
	// splits blocks: "reducing intra-block interconnect through block
	// splitting"). Split parts inherit the parent's name with a /k
	// suffix and share its power evenly.
	var reshaped []Block
	for _, b := range planar.Blocks {
		parts := 1
		if b.Area() > maxPartArea {
			parts = int(math.Ceil(b.Area() / maxPartArea))
		}
		for k := 0; k < parts; k++ {
			nb := b
			if parts > 1 {
				nb.Name = fmt.Sprintf("%s/%d", b.Name, k+1)
				nb.W = b.W / float64(parts)
				nb.Power = b.Power / float64(parts)
			}
			reshaped = append(reshaped, nb)
		}
	}
	maxW, maxH := dieW*0.92, dieH*0.92
	for i := range reshaped {
		b := &reshaped[i]
		if b.W <= maxW && b.H <= maxH {
			continue
		}
		area := b.Area()
		if b.H > maxH {
			b.H = maxH
			b.W = area / b.H
		}
		if b.W > maxW {
			b.W = maxW
			b.H = area / b.W
		}
		if b.H > maxH {
			return nil, fmt.Errorf("floorplan: block %s cannot be reshaped into the folded die", b.Name)
		}
	}

	// Partition by first-fit decreasing area (forced critical blocks
	// keep their die): big blocks place first, each onto the emptier
	// die, which balances the two dies and never strands a large block.
	blocks := reshaped
	sort.Slice(blocks, func(i, j int) bool {
		if blocks[i].Area() != blocks[j].Area() {
			return blocks[i].Area() > blocks[j].Area()
		}
		return blocks[i].Name < blocks[j].Name
	})
	dieArea := [2]float64{}
	// Leave packing headroom: a first-fit packer reliably reaches ~90%
	// utilization, not 100%.
	packCap := 0.88 * capArea
	assign := map[string]int{}
	for _, b := range blocks {
		if d, ok := forced[b.Name]; ok {
			assign[b.Name] = d
			dieArea[d] += b.Area()
		}
	}
	for _, b := range blocks {
		if _, ok := forced[b.Name]; ok {
			continue
		}
		d := 0
		if dieArea[1] < dieArea[0] {
			d = 1
		}
		if dieArea[d]+b.Area() > packCap {
			d = 1 - d
		}
		assign[b.Name] = d
		dieArea[d] += b.Area()
	}
	if dieArea[0] > packCap || dieArea[1] > packCap {
		return nil, fmt.Errorf("floorplan: AutoFold blocks do not fit two %.1fx%.1f mm dies",
			dieW*1e3, dieH*1e3)
	}

	// Place die 0 by shelf packing (hottest blocks get spread first so
	// the packer naturally separates them).
	folded := &Floorplan{
		Name: planar.Name + "-autofold",
		DieW: dieW, DieH: dieH, Dies: 2,
	}
	var die0, die1 []Block
	for _, b := range blocks {
		nb := b
		nb.Power *= opt.PowerFactor
		nb.Die = assign[b.Name]
		if nb.Die == 0 {
			die0 = append(die0, nb)
		} else {
			die1 = append(die1, nb)
		}
	}
	placed0, err := packAround(die0, nil, dieW, dieH)
	if err != nil {
		return nil, err
	}
	folded.Blocks = placed0

	// Die 1: mates first, directly over their partners; the rest packed
	// into whatever space remains.
	pos0 := map[string]Block{}
	for _, b := range placed0 {
		pos0[b.Name] = b
	}
	var mates, rest []Block
	mateOf := map[string]string{} // die-1 partner -> die-0 anchor
	for hot, cold := range mate {
		mateOf[cold] = hot
	}
	for _, b := range die1 {
		if _, ok := mateOf[b.Name]; ok {
			mates = append(mates, b)
		} else {
			rest = append(rest, b)
		}
	}
	var placed1 []Block
	for _, b := range mates {
		anchor := pos0[mateOf[b.Name]]
		ax, ay := anchor.Center()
		nb := b
		nb.X = clamp(ax-b.W/2, 0, dieW-b.W)
		nb.Y = clamp(ay-b.H/2, 0, dieH-b.H)
		nb = nudgeApart(nb, placed1, dieW, dieH)
		placed1 = append(placed1, nb)
	}
	packedRest, err := packAround(rest, placed1, dieW, dieH)
	if err != nil {
		return nil, err
	}
	placed1 = append(placed1, packedRest...)
	folded.Blocks = append(folded.Blocks, placed1...)

	if err := folded.Validate(); err != nil {
		return nil, fmt.Errorf("floorplan: AutoFold produced an invalid plan: %w", err)
	}

	// Observe-and-repair loop: while the through-stack peak density
	// exceeds the target, move the worst non-anchored contributor to
	// the coolest spot of its die.
	planarPeak := planar.PeakDensity(0, opt.Grid, opt.Grid)
	target := opt.DensityTarget * planarPeak
	for iter := 0; iter < opt.MaxRepairIters; iter++ {
		peak, cellX, cellY := stackedPeakCell(folded, opt.Grid)
		if peak <= target {
			break
		}
		victim := hottestContributor(folded, cellX, cellY, opt.Grid, mate, mateOf)
		if victim < 0 {
			break // everything at the hot spot is pinned
		}
		moved, ok := moveToCoolest(folded, victim, opt.Grid)
		if !ok {
			break
		}
		folded.Blocks[victim] = moved
	}
	if err := folded.Validate(); err != nil {
		return nil, fmt.Errorf("floorplan: AutoFold repair broke the plan: %w", err)
	}
	return folded, nil
}

func clamp(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// shelfPack places blocks left-to-right in height-sorted shelves.
func shelfPack(blocks []Block, dieW, dieH float64) ([]Block, error) {
	sorted := append([]Block(nil), blocks...)
	sort.Slice(sorted, func(i, j int) bool {
		if sorted[i].H != sorted[j].H {
			return sorted[i].H > sorted[j].H
		}
		return sorted[i].Name < sorted[j].Name
	})
	var out []Block
	x, y, shelfH := 0.0, 0.0, 0.0
	for _, b := range sorted {
		if x+b.W > dieW+1e-12 {
			y += shelfH
			x, shelfH = 0, 0
		}
		if y+b.H > dieH+1e-12 {
			return nil, fmt.Errorf("floorplan: shelf packing overflowed the %gx%g mm die at %s",
				dieW*1e3, dieH*1e3, b.Name)
		}
		nb := b
		nb.X, nb.Y = x, y
		out = append(out, nb)
		x += b.W
		if b.H > shelfH {
			shelfH = b.H
		}
	}
	return out, nil
}

// nudgeApart shifts b on a coarse grid until it no longer overlaps any
// already-placed block (best effort: returns the least-overlapping
// position found).
func nudgeApart(b Block, placed []Block, dieW, dieH float64) Block {
	if !overlapsAny(b, placed) {
		return b
	}
	const steps = 24
	best := b
	bestOv := overlapArea(b, placed)
	for iy := 0; iy <= steps; iy++ {
		for ix := 0; ix <= steps; ix++ {
			cand := b
			cand.X = float64(ix) / steps * (dieW - b.W)
			cand.Y = float64(iy) / steps * (dieH - b.H)
			ov := overlapArea(cand, placed)
			if ov < bestOv {
				best, bestOv = cand, ov
				if ov == 0 {
					return best
				}
			}
		}
	}
	return best
}

// packAround places blocks (largest first) at the first grid position
// that avoids every already-placed block.
func packAround(blocks, placed []Block, dieW, dieH float64) ([]Block, error) {
	sorted := append([]Block(nil), blocks...)
	sort.Slice(sorted, func(i, j int) bool {
		if sorted[i].Area() != sorted[j].Area() {
			return sorted[i].Area() > sorted[j].Area()
		}
		return sorted[i].Name < sorted[j].Name
	})
	occupied := append([]Block(nil), placed...)
	var out []Block
	const steps = 48
	for _, b := range sorted {
		found := false
	scan:
		for iy := 0; iy <= steps && !found; iy++ {
			for ix := 0; ix <= steps; ix++ {
				cand := b
				cand.X = float64(ix) / steps * (dieW - b.W)
				cand.Y = float64(iy) / steps * (dieH - b.H)
				if !overlapsAny(cand, occupied) {
					occupied = append(occupied, cand)
					out = append(out, cand)
					found = true
					break scan
				}
			}
		}
		if !found {
			return nil, fmt.Errorf("floorplan: no room for %s on the folded die", b.Name)
		}
	}
	return out, nil
}

func overlapsAny(b Block, placed []Block) bool {
	for _, o := range placed {
		if b.overlaps(o) {
			return true
		}
	}
	return false
}

func overlapArea(b Block, placed []Block) float64 {
	total := 0.0
	for _, o := range placed {
		if b.Die != o.Die {
			continue
		}
		w := math.Min(b.X+b.W, o.X+o.W) - math.Max(b.X, o.X)
		h := math.Min(b.Y+b.H, o.Y+o.H) - math.Max(b.Y, o.Y)
		if w > 0 && h > 0 {
			total += w * h
		}
	}
	return total
}

// stackedPeakCell rasterizes the through-stack density and returns the
// peak value and its cell.
func stackedPeakCell(f *Floorplan, grid int) (peak float64, cx, cy int) {
	sum := f.PowerMap(0, grid, grid)
	for d := 1; d < f.Dies; d++ {
		pm := f.PowerMap(d, grid, grid)
		for y := 0; y < grid; y++ {
			for x := 0; x < grid; x++ {
				sum.Add(x, y, pm.At(x, y))
			}
		}
	}
	cellArea := (f.DieW / float64(grid)) * (f.DieH / float64(grid))
	for y := 0; y < grid; y++ {
		for x := 0; x < grid; x++ {
			if d := sum.At(x, y) / cellArea; d > peak {
				peak, cx, cy = d, x, y
			}
		}
	}
	return peak, cx, cy
}

// hottestContributor returns the index of the highest-density movable
// block covering the given cell, or -1 when everything there is an
// anchored critical pair member.
func hottestContributor(f *Floorplan, cx, cy, grid int, mate map[string]string, mateOf map[string]string) int {
	cw := f.DieW / float64(grid)
	ch := f.DieH / float64(grid)
	px := (float64(cx) + 0.5) * cw
	py := (float64(cy) + 0.5) * ch
	best, bestDensity := -1, 0.0
	for i, b := range f.Blocks {
		if px < b.X || px >= b.X+b.W || py < b.Y || py >= b.Y+b.H {
			continue
		}
		if _, pinned := mate[b.Name]; pinned {
			continue
		}
		if _, pinned := mateOf[b.Name]; pinned {
			continue
		}
		if d := b.Density(); d > bestDensity {
			best, bestDensity = i, d
		}
	}
	return best
}

// moveToCoolest relocates block idx to the legal position of its die
// with the lowest local stacked density.
func moveToCoolest(f *Floorplan, idx, grid int) (Block, bool) {
	b := f.Blocks[idx]
	others := make([]Block, 0, len(f.Blocks)-1)
	for i, o := range f.Blocks {
		if i != idx && o.Die == b.Die {
			others = append(others, o)
		}
	}
	// Density field of everything except the victim.
	sum := stackedMapExcluding(f, idx, grid)
	cellArea := (f.DieW / float64(grid)) * (f.DieH / float64(grid))

	const steps = 32
	best := b
	bestScore := math.Inf(1)
	for iy := 0; iy <= steps; iy++ {
		for ix := 0; ix <= steps; ix++ {
			cand := b
			cand.X = float64(ix) / steps * (f.DieW - b.W)
			cand.Y = float64(iy) / steps * (f.DieH - b.H)
			if overlapsAny(cand, others) {
				continue
			}
			// Score: the max ambient density under the candidate.
			score := 0.0
			x0 := int(cand.X / (f.DieW / float64(grid)))
			x1 := int(math.Ceil((cand.X + cand.W) / (f.DieW / float64(grid))))
			y0 := int(cand.Y / (f.DieH / float64(grid)))
			y1 := int(math.Ceil((cand.Y + cand.H) / (f.DieH / float64(grid))))
			for y := y0; y < y1 && y < grid; y++ {
				for x := x0; x < x1 && x < grid; x++ {
					if d := sum.At(x, y) / cellArea; d > score {
						score = d
					}
				}
			}
			if score < bestScore {
				best, bestScore = cand, score
			}
		}
	}
	if math.IsInf(bestScore, 1) {
		return b, false
	}
	return best, true
}

// stackedMapExcluding rasterizes the through-stack power of every
// block except idx.
func stackedMapExcluding(f *Floorplan, idx, grid int) *thermal.PowerMap {
	tmp := f.Clone()
	tmp.Blocks[idx].Power = 0
	sum := tmp.PowerMap(0, grid, grid)
	for d := 1; d < tmp.Dies; d++ {
		pm := tmp.PowerMap(d, grid, grid)
		for y := 0; y < grid; y++ {
			for x := 0; x < grid; x++ {
				sum.Add(x, y, pm.At(x, y))
			}
		}
	}
	return sum
}
