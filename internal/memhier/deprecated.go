package memhier

import (
	"context"

	"diestack/internal/trace"
)

// This file holds the pre-consolidation entry point, kept for one
// release. Run is now context-first; new code must not call anything
// in this file (verify.sh greps for it).

// RunContext replays the stream under supervision.
//
// Deprecated: Run is now context-first; call Run(ctx, stream, opt).
func (s *Simulator) RunContext(ctx context.Context, stream trace.Stream, opt RunOptions) (Result, error) {
	return s.Run(ctx, stream, opt)
}
