package memhier

import (
	"context"
	"errors"
	"io"
	"strings"
	"testing"

	"diestack/internal/trace"
)

// faultyStream yields good records then fails.
type faultyStream struct {
	good int
	pos  int
}

func (f *faultyStream) Next() (trace.Record, error) {
	if f.pos >= f.good {
		return trace.Record{}, errors.New("injected stream fault")
	}
	r := trace.Record{ID: uint64(f.pos), Dep: trace.NoDep, Addr: uint64(f.pos) * 64, Kind: trace.Load}
	f.pos++
	return r, nil
}

func TestRunPropagatesStreamErrors(t *testing.T) {
	s := mustSim(t, BaselineConfig())
	_, err := s.Run(context.Background(), &faultyStream{good: 100}, RunOptions{})
	if err == nil {
		t.Fatal("stream fault swallowed")
	}
	if !strings.Contains(err.Error(), "injected stream fault") {
		t.Fatalf("fault not wrapped: %v", err)
	}
}

func TestRunStopsAtLimitBeforeFault(t *testing.T) {
	s := mustSim(t, BaselineConfig())
	res, err := s.Run(context.Background(), &faultyStream{good: 100}, RunOptions{Limit: 50})
	if err != nil {
		t.Fatalf("limit should stop before the fault: %v", err)
	}
	if res.Records != 50 {
		t.Fatalf("Records = %d, want 50", res.Records)
	}
}

// slowEOFStream returns io.EOF wrapped, which must still terminate.
type wrappedEOFStream struct{ pos int }

func (w *wrappedEOFStream) Next() (trace.Record, error) {
	if w.pos >= 10 {
		return trace.Record{}, io.EOF
	}
	r := trace.Record{ID: uint64(w.pos), Dep: trace.NoDep, Addr: 0, Kind: trace.Load}
	w.pos++
	return r, nil
}

func TestRunHandlesEOF(t *testing.T) {
	s := mustSim(t, BaselineConfig())
	res, err := s.Run(context.Background(), &wrappedEOFStream{}, RunOptions{})
	if err != nil || res.Records != 10 {
		t.Fatalf("EOF handling wrong: %d records, err=%v", res.Records, err)
	}
}

func TestSingleCoreMachine(t *testing.T) {
	cfg := BaselineConfig()
	cfg.Cores = 1
	s := mustSim(t, cfg)
	recs := seqTrace(5000, 1, func(i int) uint64 { return uint64(i%64) * 64 })
	res, err := s.Run(context.Background(), trace.NewSliceStream(recs), RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	// One core: CPMA floor is 1.0.
	if res.CPMA < 0.99 {
		t.Fatalf("single-core CPMA %v below the 1.0 floor", res.CPMA)
	}
}

func TestDependencyBeyondWindowStillRuns(t *testing.T) {
	// A dependency further back than the completion window must be
	// treated as already complete, not crash or stall.
	s := mustSim(t, BaselineConfig())
	n := 1 << 21 // larger than the 1<<20 window
	recs := make([]trace.Record, n)
	for i := range recs {
		dep := trace.NoDep
		if i == n-1 {
			dep = 0 // refers to the very first record
		}
		recs[i] = trace.Record{
			ID: uint64(i), Dep: dep, Addr: uint64(i%1024) * 64,
			CPU: uint8(i % 2), Kind: trace.Load, Reps: 3,
		}
	}
	res, err := s.Run(context.Background(), trace.NewSliceStream(recs), RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Records != uint64(n) {
		t.Fatalf("Records = %d", res.Records)
	}
}

func TestBinaryReaderAsStream(t *testing.T) {
	// The simulator consumes the binary trace reader directly.
	recs := seqTrace(1000, 2, func(i int) uint64 { return uint64(i) * 64 })
	var sb strings.Builder
	w := trace.NewWriter(&sb)
	for _, r := range recs {
		if err := w.Write(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}

	s := mustSim(t, BaselineConfig())
	res, err := s.Run(context.Background(), trace.NewReader(strings.NewReader(sb.String())), RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Records != 1000 {
		t.Fatalf("Records = %d", res.Records)
	}

	// And a truncated file surfaces an error instead of silence.
	s2 := mustSim(t, BaselineConfig())
	trunc := sb.String()[:sb.Len()-7]
	if _, err := s2.Run(context.Background(), trace.NewReader(strings.NewReader(trunc)), RunOptions{}); err == nil {
		t.Fatal("truncated trace accepted")
	}
}
