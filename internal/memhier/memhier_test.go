package memhier

import (
	"context"
	"testing"

	"diestack/internal/cache"
	"diestack/internal/trace"
)

// seqTrace builds a trace of n loads round-robining across cores with
// addresses from addrFn, no dependencies.
func seqTrace(n int, cores int, addrFn func(i int) uint64) []trace.Record {
	recs := make([]trace.Record, n)
	for i := range recs {
		recs[i] = trace.Record{
			ID: uint64(i), Dep: trace.NoDep, Addr: addrFn(i),
			PC: 0x400000, CPU: uint8(i % cores), Kind: trace.Load,
		}
	}
	return recs
}

func mustSim(t *testing.T, cfg Config) *Simulator {
	t.Helper()
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestConfigValidate(t *testing.T) {
	good := BaselineConfig()
	if err := good.Validate(); err != nil {
		t.Fatalf("baseline invalid: %v", err)
	}
	bad := good
	bad.Cores = 0
	if bad.Validate() == nil {
		t.Error("zero cores accepted")
	}
	bad = good
	bad.L1D.Ways = 0
	if bad.Validate() == nil {
		t.Error("bad L1D accepted")
	}
	bad = good
	bad.BusBytesPerCycle = 0
	if bad.Validate() == nil {
		t.Error("zero bus accepted")
	}
	bad = good
	bad.CoreGHz = -1
	if bad.Validate() == nil {
		t.Error("negative GHz accepted")
	}
	bad = StackedDRAMConfig(32)
	bad.DRAMArray.Banks = 0
	if bad.Validate() == nil {
		t.Error("bad DRAM array accepted")
	}
}

func TestPresetConfigsValid(t *testing.T) {
	for _, mb := range []int{4, 8, 12, 16, 32, 64} {
		cfg, ok := ConfigByCapacity(mb)
		if !ok {
			t.Fatalf("ConfigByCapacity(%d) not ok", mb)
		}
		if err := cfg.Validate(); err != nil {
			t.Errorf("%dMB config invalid: %v", mb, err)
		}
	}
	if _, ok := ConfigByCapacity(5); ok {
		t.Error("5MB should be rejected")
	}
}

func TestStacked12MBGeometry(t *testing.T) {
	cfg := Stacked12MBConfig()
	if cfg.L2.SizeBytes != 12<<20 || cfg.L2.Latency != 24 {
		t.Fatalf("12MB config wrong: %+v", cfg.L2)
	}
	if err := cfg.L2.Validate(); err != nil {
		t.Fatalf("12MB L2 geometry invalid: %v", err)
	}
}

func TestEmptyTrace(t *testing.T) {
	s := mustSim(t, BaselineConfig())
	res, err := s.Run(context.Background(), trace.NewSliceStream(nil), RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Refs != 0 || res.CPMA != 0 {
		t.Fatalf("empty run: %+v", res)
	}
}

func TestBadCPURejected(t *testing.T) {
	s := mustSim(t, BaselineConfig())
	recs := []trace.Record{{ID: 0, Dep: trace.NoDep, CPU: 7, Kind: trace.Load}}
	if _, err := s.Run(context.Background(), trace.NewSliceStream(recs), RunOptions{}); err == nil {
		t.Fatal("record with out-of-range CPU accepted")
	}
}

func TestAllHitsCPMAAtFloor(t *testing.T) {
	s := mustSim(t, BaselineConfig())
	// A tiny footprint hammered repeatedly: after warmup everything
	// hits L1, both cores issue one access per cycle, and CPMA sits at
	// its two-core floor of 0.5 (wall cycles / total references).
	recs := seqTrace(20000, 2, func(i int) uint64 { return uint64(i%64) * 8 })
	res, err := s.Run(context.Background(), trace.NewSliceStream(recs), RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if res.CPMA < 0.49 || res.CPMA > 0.7 {
		t.Fatalf("all-hit CPMA = %v, want ~0.5", res.CPMA)
	}
	if res.L1D.HitRate() < 0.99 {
		t.Fatalf("L1D hit rate = %v", res.L1D.HitRate())
	}
	// Only the cold fills (8 lines x 64B) cross the bus.
	if res.OffDieBytes != 512 {
		t.Fatalf("off-die bytes = %d, want 512 (cold fills only)", res.OffDieBytes)
	}
}

func TestDependencySerialization(t *testing.T) {
	// A chain of dependent loads touching new L2-missing lines must be
	// far slower than the same loads made independent.
	mkTrace := func(dep bool) []trace.Record {
		recs := make([]trace.Record, 500)
		for i := range recs {
			d := trace.NoDep
			if dep && i > 0 {
				d = uint64(i - 1)
			}
			recs[i] = trace.Record{
				ID: uint64(i), Dep: d, Addr: uint64(i) * 8192,
				CPU: 0, Kind: trace.Load,
			}
		}
		return recs
	}
	sDep := mustSim(t, BaselineConfig())
	resDep, err := sDep.Run(context.Background(), trace.NewSliceStream(mkTrace(true)), RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	sInd := mustSim(t, BaselineConfig())
	resInd, err := sInd.Run(context.Background(), trace.NewSliceStream(mkTrace(false)), RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if resDep.Cycles < 2*resInd.Cycles {
		t.Fatalf("dependent chain (%d cyc) should be >2x slower than independent (%d cyc)",
			resDep.Cycles, resInd.Cycles)
	}
	// The dependent chain pays ~full memory latency per access.
	if resDep.AvgLatency < 150 {
		t.Fatalf("dependent chain avg latency = %v, want ~memory latency", resDep.AvgLatency)
	}
}

func TestCapacityResponse(t *testing.T) {
	// An 8 MB circular working set: misses badly in the 4 MB baseline,
	// fits in the 32 MB stacked DRAM. CPMA must drop and off-die
	// bandwidth must shrink dramatically.
	const lines = (8 << 20) / 64
	addr := func(i int) uint64 { return uint64(i%lines) * 64 }
	n := lines * 3 // three sweeps

	run := func(cfg Config) Result {
		s := mustSim(t, cfg)
		res, err := s.Run(context.Background(), trace.NewSliceStream(seqTrace(n, 2, addr)), RunOptions{})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	baseRes := run(BaselineConfig())
	bigRes := run(StackedDRAMConfig(32))

	if bigRes.CPMA >= baseRes.CPMA {
		t.Fatalf("32MB CPMA %v should beat 4MB CPMA %v", bigRes.CPMA, baseRes.CPMA)
	}
	if bigRes.OffDieBytes >= baseRes.OffDieBytes/2 {
		t.Fatalf("32MB off-die bytes %d should be <half of baseline %d",
			bigRes.OffDieBytes, baseRes.OffDieBytes)
	}
}

func TestCoherenceInvalidation(t *testing.T) {
	s := mustSim(t, BaselineConfig())
	recs := []trace.Record{
		{ID: 0, Dep: trace.NoDep, Addr: 0x1000, CPU: 0, Kind: trace.Load},
		{ID: 1, Dep: trace.NoDep, Addr: 0x1000, CPU: 1, Kind: trace.Load},
		{ID: 2, Dep: trace.NoDep, Addr: 0x1000, CPU: 0, Kind: trace.Store},
		// CPU 1 must reload the line after CPU 0's store.
		{ID: 3, Dep: trace.NoDep, Addr: 0x1000, CPU: 1, Kind: trace.Load},
	}
	res, err := s.Run(context.Background(), trace.NewSliceStream(recs), RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Invalidations != 1 {
		t.Fatalf("Invalidations = %d, want 1", res.Invalidations)
	}
	// Record 3 misses L1 (invalidated) but hits the shared L2.
	if res.L1D.Hits != 1 {
		t.Fatalf("L1D hits = %d, want exactly 1 (record 1's reload misses)", res.L1D.Hits)
	}
}

func TestIfetchUsesL1I(t *testing.T) {
	s := mustSim(t, BaselineConfig())
	recs := []trace.Record{
		{ID: 0, Dep: trace.NoDep, Addr: 0x8000, CPU: 0, Kind: trace.Ifetch},
		{ID: 1, Dep: trace.NoDep, Addr: 0x8000, CPU: 0, Kind: trace.Ifetch},
	}
	res, err := s.Run(context.Background(), trace.NewSliceStream(recs), RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if res.L1I.Accesses != 2 || res.L1I.Hits != 1 {
		t.Fatalf("L1I stats = %+v", res.L1I)
	}
	if res.L1D.Accesses != 0 {
		t.Fatalf("L1D touched by ifetch: %+v", res.L1D)
	}
}

func TestLimitRecords(t *testing.T) {
	s := mustSim(t, BaselineConfig())
	recs := seqTrace(1000, 2, func(i int) uint64 { return uint64(i) * 64 })
	res, err := s.Run(context.Background(), trace.NewSliceStream(recs), RunOptions{Limit: 100})
	if err != nil {
		t.Fatal(err)
	}
	if res.Refs != 100 {
		t.Fatalf("Refs = %d, want 100", res.Refs)
	}
}

func TestDRAMCacheSectorBehaviour(t *testing.T) {
	cfg := StackedDRAMConfig(32)
	s := mustSim(t, cfg)
	// Touch two different sectors of the same 512B page, then revisit.
	recs := []trace.Record{
		{ID: 0, Dep: trace.NoDep, Addr: 0x10000, CPU: 0, Kind: trace.Load},
		{ID: 1, Dep: trace.NoDep, Addr: 0x10000, CPU: 0, Kind: trace.Load},
	}
	res, err := s.Run(context.Background(), trace.NewSliceStream(recs), RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	// First access: L1 miss, L2 line miss -> memory. Second: L1 hit.
	if res.L2.LineMiss != 1 {
		t.Fatalf("L2 stats = %+v", res.L2)
	}
	if res.Memory.Accesses != 1 {
		t.Fatalf("memory accesses = %d, want 1", res.Memory.Accesses)
	}
	// The fill granule over the bus is one 64B sector, not a 512B page.
	if res.OffDieBytes != 64 {
		t.Fatalf("OffDieBytes = %d, want 64", res.OffDieBytes)
	}
}

func TestDRAMCacheHitAvoidsBus(t *testing.T) {
	cfg := StackedDRAMConfig(32)
	s := mustSim(t, cfg)
	// Evict-free pattern: warm one sector, evict it from L1 by conflict
	// misses on other L1 sets? Simpler: two cores touch the same line;
	// the second core's L1 miss should hit the stacked DRAM without bus
	// traffic beyond the first fill.
	recs := []trace.Record{
		{ID: 0, Dep: trace.NoDep, Addr: 0x20000, CPU: 0, Kind: trace.Load},
		{ID: 1, Dep: trace.NoDep, Addr: 0x20000, CPU: 1, Kind: trace.Load},
	}
	res, err := s.Run(context.Background(), trace.NewSliceStream(recs), RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if res.OffDieBytes != 64 {
		t.Fatalf("OffDieBytes = %d, want one 64B fill", res.OffDieBytes)
	}
	if res.DRAMCache.Accesses == 0 {
		t.Fatal("stacked DRAM array never touched")
	}
}

func TestWritebackTraffic(t *testing.T) {
	// Dirty a large region, then sweep a second region twice as large to
	// force dirty L2 evictions. Off-die bytes must exceed pure fill
	// traffic (fills + writebacks).
	cfg := BaselineConfig()
	s := mustSim(t, cfg)
	const region = 6 << 20
	var recs []trace.Record
	id := uint64(0)
	for a := uint64(0); a < region; a += 64 {
		recs = append(recs, trace.Record{ID: id, Dep: trace.NoDep, Addr: a, CPU: uint8(id % 2), Kind: trace.Store})
		id++
	}
	for a := uint64(region); a < 3*region; a += 64 {
		recs = append(recs, trace.Record{ID: id, Dep: trace.NoDep, Addr: a, CPU: uint8(id % 2), Kind: trace.Load})
		id++
	}
	res, err := s.Run(context.Background(), trace.NewSliceStream(recs), RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	fills := (res.L2.LineMiss + res.L2.SectorMiss) * 64
	if res.OffDieBytes <= fills {
		t.Fatalf("off-die bytes %d should exceed fill-only traffic %d (writebacks missing)",
			res.OffDieBytes, fills)
	}
	if res.L2.Writebacks == 0 {
		t.Fatal("expected L2 writebacks")
	}
}

func TestBandwidthAndPowerAccounting(t *testing.T) {
	s := mustSim(t, BaselineConfig())
	// Stream through memory: every access misses everywhere.
	recs := seqTrace(50000, 2, func(i int) uint64 { return uint64(i) * 64 })
	res, err := s.Run(context.Background(), trace.NewSliceStream(recs), RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if res.BandwidthGBs <= 0 {
		t.Fatal("bandwidth not computed")
	}
	// 20 pJ/bit: power W = 0.16 x GB/s.
	want := 0.16 * res.BandwidthGBs
	if diff := res.BusPowerW - want; diff > 1e-9 || diff < -1e-9 {
		t.Fatalf("BusPowerW = %v, want %v", res.BusPowerW, want)
	}
	// The bus is capped at 16 GB/s.
	if res.BandwidthGBs > 16.01 {
		t.Fatalf("bandwidth %v exceeds the 16 GB/s bus", res.BandwidthGBs)
	}
}

func TestL2KindString(t *testing.T) {
	if L2SRAM.String() != "sram" || L2DRAM.String() != "dram" {
		t.Error("L2Kind names wrong")
	}
}

func TestStatsLedger(t *testing.T) {
	s := mustSim(t, StackedDRAMConfig(32))
	recs := seqTrace(30000, 2, func(i int) uint64 { return uint64(i*199) % (16 << 20) })
	res, err := s.Run(context.Background(), trace.NewSliceStream(recs), RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	for _, cs := range []cache.Stats{res.L1D, res.L2} {
		if cs.Accesses != cs.Hits+cs.SectorMiss+cs.LineMiss {
			t.Fatalf("cache ledger unbalanced: %+v", cs)
		}
	}
	if res.Refs != 30000 {
		t.Fatalf("Refs = %d", res.Refs)
	}
}

func TestLatencyQuantiles(t *testing.T) {
	s := mustSim(t, BaselineConfig())
	// Mix of L1 hits (revisits) and memory misses (fresh lines).
	recs := seqTrace(20000, 2, func(i int) uint64 {
		if i%4 == 0 {
			return uint64(i) * 8192 // always a fresh line: memory miss
		}
		return uint64(i%8) * 64 // hot lines: L1 hits
	})
	res, err := s.Run(context.Background(), trace.NewSliceStream(recs), RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !(res.LatencyP50 <= res.LatencyP95 && res.LatencyP95 <= res.LatencyP99) {
		t.Fatalf("quantiles not ordered: %v / %v / %v",
			res.LatencyP50, res.LatencyP95, res.LatencyP99)
	}
	// The median is an L1 hit; the tail is a memory access.
	if res.LatencyP50 > 20 {
		t.Errorf("P50 = %v, want L1-hit scale", res.LatencyP50)
	}
	if res.LatencyP99 < 100 {
		t.Errorf("P99 = %v, want memory scale", res.LatencyP99)
	}
}
