package memhier

import (
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"reflect"

	"diestack/internal/cache"
	"diestack/internal/dram"
	"diestack/internal/fault"
	"diestack/internal/stats"
	"diestack/internal/trace"
)

// Checkpoint file framing: a fixed header followed by a gob blob. The
// length and CRC let LoadCheckpoint refuse truncated or bit-flipped
// files instead of resuming from garbage.
const (
	checkpointMagic   = "D3CK"
	checkpointVersion = 1
)

var (
	// ErrCorruptCheckpoint marks a checkpoint file that is truncated,
	// bit-flipped, or not a checkpoint at all. Matched with errors.Is.
	ErrCorruptCheckpoint = errors.New("memhier: corrupt checkpoint")
	// ErrCheckpointMismatch marks a well-formed checkpoint that does not
	// belong to this simulator configuration or trace stream.
	ErrCheckpointMismatch = errors.New("memhier: checkpoint mismatch")
)

// DepEntry is one live slot of the sliding completion-time window.
// The window is stored sparsely: most of its 2^20 slots are empty for
// short runs, and gob would spend ten bytes on every empty sentinel.
type DepEntry struct {
	W  uint64 // window index
	ID uint64 // record id occupying the slot
	At int64  // completion cycle
}

// Checkpoint is a complete snapshot of a replay in flight: the loop
// state plus every stateful component of the simulator. Restoring it
// into a fresh Simulator built from the same Config and replaying the
// same trace from the saved position produces a Result bit-identical
// to an uninterrupted run.
type Checkpoint struct {
	Config Config
	// Records is the number of trace records consumed when the snapshot
	// was taken; resume skips this many records from the stream head.
	Records uint64
	// StreamHash digests every consumed record so resume can refuse a
	// different trace.
	StreamHash uint64

	// Replay loop state.
	Slot    []int64
	Done    []DepEntry
	MSHR    [][]int64
	MSHRPos []int
	ROB     [][]int64
	ROBPos  []int
	Refs    uint64
	Wall    int64
	SumLat  int64

	// Simulator component state.
	BusFree     int64
	OffDieBytes uint64
	Invals      uint64
	RepHits     uint64
	L1I, L1D    []cache.State
	L2          cache.State
	DArr        *dram.State // nil for SRAM L2
	Mem         dram.State
	Latencies   stats.HistogramState
	Faults      *fault.State // nil when injection is disabled
}

// checkpoint snapshots the simulator and loop state into the
// simulator's reusable scratch Checkpoint. All slices are deep-copied
// (reusing scratch capacity from previous snapshots) so the snapshot is
// immune to further replay; the returned pointer is only valid until
// the next checkpoint call.
func (s *Simulator) checkpoint(st *runState) *Checkpoint {
	cp := &s.cpScratch
	*cp = Checkpoint{
		Config:      s.cfg,
		Records:     st.records,
		StreamHash:  st.hash,
		Slot:        append(cp.Slot[:0], st.slot...),
		Done:        cp.Done[:0],
		MSHRPos:     append(cp.MSHRPos[:0], st.mshrPos...),
		ROBPos:      append(cp.ROBPos[:0], st.robPos...),
		MSHR:        cp.MSHR,
		ROB:         cp.ROB,
		L1I:         cp.L1I[:0],
		L1D:         cp.L1D[:0],
		Refs:        st.refs,
		Wall:        st.wall,
		SumLat:      st.sumLat,
		BusFree:     s.busFree,
		OffDieBytes: s.offDieBytes,
		Invals:      s.invals,
		RepHits:     s.repHits,
		L2:          s.l2.State(),
		Mem:         s.mem.State(),
		Latencies:   s.latencies.State(),
	}
	for w, id := range st.doneID {
		if id != ^uint64(0) {
			cp.Done = append(cp.Done, DepEntry{W: uint64(w), ID: id, At: st.doneAt[w]})
		}
	}
	if len(cp.MSHR) != len(st.mshr) {
		cp.MSHR = make([][]int64, len(st.mshr))
	}
	for i := range st.mshr {
		cp.MSHR[i] = append(cp.MSHR[i][:0], st.mshr[i]...)
	}
	if len(cp.ROB) != len(st.rob) {
		cp.ROB = make([][]int64, len(st.rob))
	}
	for i := range st.rob {
		cp.ROB[i] = append(cp.ROB[i][:0], st.rob[i]...)
	}
	for i := 0; i < s.cfg.Cores; i++ {
		cp.L1I = append(cp.L1I, s.l1i[i].State())
		cp.L1D = append(cp.L1D, s.l1d[i].State())
	}
	if s.darr != nil {
		dst := s.darr.State()
		cp.DArr = &dst
	}
	if s.inj != nil {
		fst := s.inj.State()
		cp.Faults = &fst
	}
	return cp
}

// restore rebuilds the loop and simulator state from a checkpoint and
// positions the stream at the saved record, verifying along the way
// that the checkpoint belongs to this configuration and this trace.
func (s *Simulator) restore(st *runState, cp *Checkpoint, stream trace.Stream) error {
	if !reflect.DeepEqual(cp.Config, s.cfg) {
		return fmt.Errorf("%w: checkpoint was taken on a different machine configuration", ErrCheckpointMismatch)
	}
	// Shape checks: the config matched, so any disagreement here means
	// the blob was assembled inconsistently.
	cores := s.cfg.Cores
	if len(cp.Slot) != cores || len(cp.MSHR) != cores || len(cp.MSHRPos) != cores ||
		len(cp.ROB) != cores || len(cp.ROBPos) != cores ||
		len(cp.L1I) != cores || len(cp.L1D) != cores {
		return fmt.Errorf("%w: per-core state sized for %d cores, machine has %d",
			ErrCheckpointMismatch, len(cp.Slot), cores)
	}
	if (cp.DArr == nil) != (s.darr == nil) {
		return fmt.Errorf("%w: DRAM-array state presence disagrees with L2 type", ErrCheckpointMismatch)
	}
	if (cp.Faults == nil) != (s.inj == nil) {
		return fmt.Errorf("%w: fault-injector state presence disagrees with configuration", ErrCheckpointMismatch)
	}

	// Skip the stream to the checkpoint position, digesting the skipped
	// records so a checkpoint cannot silently resume a different trace.
	h := st.hash // FNV offset basis from newRunState
	for i := uint64(0); i < cp.Records; i++ {
		rec, err := stream.Next()
		if errors.Is(err, io.EOF) {
			return fmt.Errorf("%w: trace ends after %d records but checkpoint was taken at %d",
				ErrCheckpointMismatch, i, cp.Records)
		}
		if err != nil {
			return fmt.Errorf("memhier: reading trace while resuming: %w", err)
		}
		h = hashRecord(h, rec)
	}
	if h != cp.StreamHash {
		return fmt.Errorf("%w: trace content differs from the one the checkpoint was taken on", ErrCheckpointMismatch)
	}

	// Loop state.
	copy(st.slot, cp.Slot)
	for _, e := range cp.Done {
		if e.W >= depWindow {
			return fmt.Errorf("%w: dependency-window index %d out of range", ErrCheckpointMismatch, e.W)
		}
		st.doneID[e.W] = e.ID
		st.doneAt[e.W] = e.At
	}
	for i := 0; i < cores; i++ {
		if len(cp.MSHR[i]) != len(st.mshr[i]) || len(cp.ROB[i]) != len(st.rob[i]) {
			return fmt.Errorf("%w: core %d ring sizes differ", ErrCheckpointMismatch, i)
		}
		copy(st.mshr[i], cp.MSHR[i])
		copy(st.rob[i], cp.ROB[i])
	}
	copy(st.mshrPos, cp.MSHRPos)
	copy(st.robPos, cp.ROBPos)
	st.records = cp.Records
	st.refs = cp.Refs
	st.wall = cp.Wall
	st.sumLat = cp.SumLat
	st.hash = cp.StreamHash

	// Component state.
	s.busFree = cp.BusFree
	s.offDieBytes = cp.OffDieBytes
	s.invals = cp.Invals
	s.repHits = cp.RepHits
	for i := 0; i < cores; i++ {
		if err := s.l1i[i].Restore(cp.L1I[i]); err != nil {
			return fmt.Errorf("%w: L1I[%d]: %v", ErrCheckpointMismatch, i, err)
		}
		if err := s.l1d[i].Restore(cp.L1D[i]); err != nil {
			return fmt.Errorf("%w: L1D[%d]: %v", ErrCheckpointMismatch, i, err)
		}
	}
	if err := s.l2.Restore(cp.L2); err != nil {
		return fmt.Errorf("%w: L2: %v", ErrCheckpointMismatch, err)
	}
	if cp.DArr != nil {
		if err := s.darr.Restore(*cp.DArr); err != nil {
			return fmt.Errorf("%w: DRAM array: %v", ErrCheckpointMismatch, err)
		}
	}
	if err := s.mem.Restore(cp.Mem); err != nil {
		return fmt.Errorf("%w: memory: %v", ErrCheckpointMismatch, err)
	}
	if err := s.latencies.Restore(cp.Latencies); err != nil {
		return fmt.Errorf("%w: latency histogram: %v", ErrCheckpointMismatch, err)
	}
	if cp.Faults != nil {
		if err := s.inj.Restore(*cp.Faults); err != nil {
			return fmt.Errorf("%w: fault injector: %v", ErrCheckpointMismatch, err)
		}
	}
	return nil
}

// SaveCheckpoint writes the checkpoint to path atomically: the framed
// blob goes to a temporary file in the same directory which is then
// renamed over path, so a kill mid-write never destroys the previous
// snapshot.
func SaveCheckpoint(path string, cp *Checkpoint) error {
	var buf bytes.Buffer
	return saveCheckpoint(path, cp, &buf)
}

// saveCheckpoint is SaveCheckpoint with a caller-supplied encode
// buffer, so the periodic-snapshot path can reuse one buffer across
// the run instead of growing a fresh one per checkpoint.
func saveCheckpoint(path string, cp *Checkpoint, buf *bytes.Buffer) error {
	if err := encodeCheckpoint(buf, cp); err != nil {
		return err
	}
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".tmp*")
	if err != nil {
		return fmt.Errorf("memhier: creating checkpoint temp file: %w", err)
	}
	defer os.Remove(tmp.Name()) // no-op after a successful rename
	if _, err := tmp.Write(buf.Bytes()); err != nil {
		tmp.Close()
		return fmt.Errorf("memhier: writing checkpoint: %w", err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("memhier: closing checkpoint temp file: %w", err)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		return fmt.Errorf("memhier: installing checkpoint: %w", err)
	}
	return nil
}

// encodeCheckpoint frames cp into buf, reusing buf's capacity: the
// magic and a reserved header go in first, the gob blob is encoded
// directly behind them, and the header's length and CRC fields are
// patched in place once the blob size is known.
func encodeCheckpoint(buf *bytes.Buffer, cp *Checkpoint) error {
	buf.Reset()
	buf.WriteString(checkpointMagic)
	var hdr [16]byte
	buf.Write(hdr[:]) // patched below
	if err := gob.NewEncoder(buf).Encode(cp); err != nil {
		return fmt.Errorf("memhier: encoding checkpoint: %w", err)
	}
	framed := buf.Bytes()
	blob := framed[len(checkpointMagic)+16:]
	h := framed[len(checkpointMagic):]
	binary.BigEndian.PutUint32(h[0:4], checkpointVersion)
	binary.BigEndian.PutUint64(h[4:12], uint64(len(blob)))
	binary.BigEndian.PutUint32(h[12:16], crc32.ChecksumIEEE(blob))
	return nil
}

// LoadCheckpoint reads and validates a checkpoint file. Truncated or
// bit-flipped files fail with an error matching ErrCorruptCheckpoint.
func LoadCheckpoint(path string) (*Checkpoint, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("memhier: reading checkpoint: %w", err)
	}
	if len(raw) < len(checkpointMagic)+16 {
		return nil, fmt.Errorf("%w: file %q is %d bytes, shorter than the header", ErrCorruptCheckpoint, path, len(raw))
	}
	if string(raw[:len(checkpointMagic)]) != checkpointMagic {
		return nil, fmt.Errorf("%w: %q is not a checkpoint file (bad magic)", ErrCorruptCheckpoint, path)
	}
	hdr := raw[len(checkpointMagic):]
	version := binary.BigEndian.Uint32(hdr[0:4])
	if version != checkpointVersion {
		return nil, fmt.Errorf("%w: unsupported checkpoint version %d (want %d)", ErrCorruptCheckpoint, version, checkpointVersion)
	}
	length := binary.BigEndian.Uint64(hdr[4:12])
	sum := binary.BigEndian.Uint32(hdr[12:16])
	blob := hdr[16:]
	if uint64(len(blob)) != length {
		return nil, fmt.Errorf("%w: truncated file: header names %d payload bytes, found %d", ErrCorruptCheckpoint, length, len(blob))
	}
	if crc32.ChecksumIEEE(blob) != sum {
		return nil, fmt.Errorf("%w: payload checksum mismatch", ErrCorruptCheckpoint)
	}
	var cp Checkpoint
	if err := gob.NewDecoder(bytes.NewReader(blob)).Decode(&cp); err != nil {
		return nil, fmt.Errorf("%w: decoding payload: %v", ErrCorruptCheckpoint, err)
	}
	return &cp, nil
}
