package memhier

import (
	"context"
	"testing"

	"diestack/internal/trace"
)

func replayBench(b *testing.B, cfg Config) {
	b.Helper()
	recs := make([]trace.Record, 200_000)
	for i := range recs {
		recs[i] = trace.Record{
			ID: uint64(i), Dep: trace.NoDep, Addr: uint64(i*67) % (24 << 20),
			CPU: uint8(i % 2), Kind: trace.Load, Reps: 7,
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sim, err := New(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := sim.Run(context.Background(), trace.NewSliceStream(recs), RunOptions{}); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(len(recs)), "records/op")
}

func BenchmarkReplaySRAM(b *testing.B) { replayBench(b, BaselineConfig()) }
func BenchmarkReplayDRAM(b *testing.B) { replayBench(b, StackedDRAMConfig(32)) }

// benchStream is an endless synthetic record source: strictly
// increasing ids, no dependencies, a strided address pattern that
// misses through the hierarchy. Next never allocates.
type benchStream struct{ id uint64 }

func (s *benchStream) Next() (trace.Record, error) {
	r := trace.Record{
		ID:   s.id,
		Dep:  trace.NoDep,
		Addr: (s.id * 67 * 64) % (24 << 20),
		CPU:  uint8(s.id % 2),
		Kind: trace.Load,
		Reps: 7,
	}
	s.id++
	return r, nil
}

// BenchmarkReplaySteadyState measures the per-record cost of a warm
// replay loop with the simulator built once — the regime a
// billion-record campaign run spends essentially all its time in. One
// op is one record; allocs/op must report 0 (the fixed run-state setup
// amortizes to nothing over b.N records).
func BenchmarkReplaySteadyState(b *testing.B) {
	sim, err := New(StackedDRAMConfig(32))
	if err != nil {
		b.Fatal(err)
	}
	src := &benchStream{}
	if _, err := sim.Run(context.Background(), src, RunOptions{Limit: 10_000}); err != nil { // warm the caches
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	if _, err := sim.Run(context.Background(), src, RunOptions{Limit: b.N}); err != nil {
		b.Fatal(err)
	}
}
