package memhier

import (
	"testing"

	"diestack/internal/trace"
)

func replayBench(b *testing.B, cfg Config) {
	b.Helper()
	recs := make([]trace.Record, 200_000)
	for i := range recs {
		recs[i] = trace.Record{
			ID: uint64(i), Dep: trace.NoDep, Addr: uint64(i*67) % (24 << 20),
			CPU: uint8(i % 2), Kind: trace.Load, Reps: 7,
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sim, err := New(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := sim.Run(trace.NewSliceStream(recs), 0); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(len(recs)), "records/op")
}

func BenchmarkReplaySRAM(b *testing.B) { replayBench(b, BaselineConfig()) }
func BenchmarkReplayDRAM(b *testing.B) { replayBench(b, StackedDRAMConfig(32)) }
