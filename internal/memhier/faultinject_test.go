package memhier

import (
	"context"
	"errors"
	"reflect"
	"testing"

	"diestack/internal/fault"
	"diestack/internal/trace"
)

// l2WorkingSetTrace walks a working set that overflows the 32 KB L1
// but fits comfortably in any stacked DRAM L2, so steady-state traffic
// exercises the DRAM-cache hit path the ECC model guards.
func l2WorkingSetTrace(n int) []trace.Record {
	const lines = 4096 // 256 KB working set at 64 B per reference
	return seqTrace(n, 2, func(i int) uint64 { return uint64(i%lines) * 64 })
}

func runFaulty(t *testing.T, fc fault.Config, recs []trace.Record) Result {
	t.Helper()
	cfg := StackedDRAMConfig(32)
	cfg.Faults = fc
	res, err := mustSim(t, cfg).Run(context.Background(), trace.NewSliceStream(recs), RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestUncorrectableStormCompletesDegraded(t *testing.T) {
	recs := l2WorkingSetTrace(60000)
	clean := runFaulty(t, fault.Config{}, recs)

	// 2% of stacked-DRAM reads uncorrectable: every one costs a line
	// invalidate plus at least one main-memory refetch.
	storm := runFaulty(t, fault.Config{Seed: 1, UncorrectablePerMAccess: 20000}, recs)

	if storm.Refs != clean.Refs {
		t.Fatalf("storm replayed %d refs, clean %d", storm.Refs, clean.Refs)
	}
	if storm.CPMA <= clean.CPMA {
		t.Fatalf("storm CPMA %.3f not above clean %.3f", storm.CPMA, clean.CPMA)
	}
	fs := storm.Faults
	if fs.ECCChecks == 0 || fs.Uncorrectable == 0 {
		t.Fatalf("no ECC activity recorded: %+v", fs)
	}
	if fs.LinesPoisoned == 0 || fs.Refetches == 0 {
		t.Fatalf("uncorrectables without recovery work: %+v", fs)
	}
	if fs.Refetches < fs.Uncorrectable {
		t.Fatalf("%d uncorrectables but only %d refetches", fs.Uncorrectable, fs.Refetches)
	}
	if clean.Faults != (fault.Stats{}) {
		t.Fatalf("clean run reported fault stats: %+v", clean.Faults)
	}
}

func TestCorrectableErrorsAddLatencyOnly(t *testing.T) {
	recs := l2WorkingSetTrace(60000)
	clean := runFaulty(t, fault.Config{}, recs)
	// 10% correctable: frequent extra-latency retries, no invalidations.
	res := runFaulty(t, fault.Config{Seed: 2, CorrectablePerMAccess: 100000}, recs)

	fs := res.Faults
	if fs.Corrected == 0 || fs.RetryCyclesAdded == 0 {
		t.Fatalf("no corrections recorded: %+v", fs)
	}
	if fs.Uncorrectable != 0 || fs.LinesPoisoned != 0 || fs.Refetches != 0 {
		t.Fatalf("correctable-only config caused recovery: %+v", fs)
	}
	if res.CPMA <= clean.CPMA {
		t.Fatalf("corrections free: CPMA %.3f vs clean %.3f", res.CPMA, clean.CPMA)
	}
	// Corrections must cost less than invalidate+refetch storms do.
	if res.OffDieBytes != clean.OffDieBytes {
		t.Fatalf("corrections moved off-die traffic: %d vs %d",
			res.OffDieBytes, clean.OffDieBytes)
	}
}

func TestDeadBanksAndTSVDegradeCPMA(t *testing.T) {
	recs := l2WorkingSetTrace(60000)
	clean := runFaulty(t, fault.Config{}, recs)
	res := runFaulty(t, fault.Config{
		Seed:        3,
		DeadBanks:   []int{0, 1, 2, 3, 4, 5, 6, 7},
		TSVFailFrac: 0.5,
	}, recs)

	if res.DRAMCache.Remapped == 0 {
		t.Fatal("no accesses remapped off the dead banks")
	}
	if res.DRAMCache.FaultCycles == 0 {
		t.Fatal("no TSV widening cycles recorded")
	}
	if res.CPMA <= clean.CPMA {
		t.Fatalf("degraded device CPMA %.3f not above clean %.3f", res.CPMA, clean.CPMA)
	}
}

func TestFaultyRunDeterministic(t *testing.T) {
	recs := l2WorkingSetTrace(40000)
	fc := fault.Config{
		Seed:                    7,
		CorrectablePerMAccess:   50000,
		UncorrectablePerMAccess: 5000,
		DeadBanks:               []int{3, 11},
		TSVFailFrac:             0.25,
	}
	a := runFaulty(t, fc, recs)
	b := runFaulty(t, fc, recs)
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("same seed+trace diverged:\n%+v\n%+v", a, b)
	}

	// A different seed must reshuffle the fault schedule (same totals in
	// expectation, different interleaving, hence different timing).
	fc.Seed = 8
	c := runFaulty(t, fc, recs)
	if reflect.DeepEqual(a.Faults, c.Faults) && a.CPMA == c.CPMA {
		t.Fatal("seed change had no effect on the fault schedule")
	}
}

func TestCleanRunDeterministic(t *testing.T) {
	recs := l2WorkingSetTrace(40000)
	a := runFaulty(t, fault.Config{}, recs)
	b := runFaulty(t, fault.Config{}, recs)
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("fault-free runs diverged:\n%+v\n%+v", a, b)
	}
}

func TestFaultConfigValidateRejects(t *testing.T) {
	cases := []struct {
		name string
		mut  func(*Config)
		want error // optional sentinel to match with errors.Is
	}{
		{name: "negative correctable rate",
			mut: func(c *Config) { c.Faults.CorrectablePerMAccess = -1 }},
		{name: "uncorrectable rate above 1e6",
			mut: func(c *Config) { c.Faults.UncorrectablePerMAccess = 2e6 }},
		{name: "rates sum past certainty",
			mut: func(c *Config) {
				c.Faults.CorrectablePerMAccess = 6e5
				c.Faults.UncorrectablePerMAccess = 6e5
			}},
		{name: "negative retry cycles",
			mut: func(c *Config) { c.Faults.ECCRetryCycles = -1 }},
		{name: "oversized retry budget",
			mut: func(c *Config) { c.Faults.MaxRefetchRetries = 99 }},
		{name: "dead bank out of device range",
			mut: func(c *Config) { c.Faults.DeadBanks = []int{16} }},
		{name: "duplicate dead bank",
			mut: func(c *Config) { c.Faults.DeadBanks = []int{5, 5} }},
		{name: "all banks dead",
			mut: func(c *Config) {
				c.Faults.DeadBanks = []int{0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15}
			},
			want: fault.ErrAllBanksDead},
		{name: "TSV fraction above 0.9",
			mut: func(c *Config) { c.Faults.TSVFailFrac = 0.95 }},
		{name: "negative sensor noise",
			mut: func(c *Config) { c.Faults.SensorNoiseC = -2 }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cfg := StackedDRAMConfig(32)
			tc.mut(&cfg)
			err := cfg.Validate()
			if err == nil {
				t.Fatalf("Validate accepted %+v", cfg.Faults)
			}
			if tc.want != nil && !errors.Is(err, tc.want) {
				t.Fatalf("error %v does not wrap %v", err, tc.want)
			}
			if _, nerr := New(cfg); nerr == nil {
				t.Fatal("New accepted an invalid config")
			}
		})
	}
}

func TestDeadBanksOnSRAML2Ignored(t *testing.T) {
	// Dead-bank config against an SRAM L2 has no stacked array to kill;
	// Validate must not consult DRAMArray geometry it does not use.
	cfg := BaselineConfig()
	cfg.Faults = fault.Config{DeadBanks: []int{0}}
	if err := cfg.Validate(); err != nil {
		t.Fatalf("SRAM L2 rejected dead-bank config: %v", err)
	}
	s := mustSim(t, cfg)
	res, err := s.Run(context.Background(), trace.NewSliceStream(l2WorkingSetTrace(5000)), RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if res.DRAMCache.Remapped != 0 {
		t.Fatalf("SRAM machine remapped DRAM banks: %+v", res.DRAMCache)
	}
}
