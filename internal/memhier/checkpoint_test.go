package memhier

import (
	"context"
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"diestack/internal/fault"
	"diestack/internal/trace"
)

// ckptTrace builds a trace with enough variety to exercise every piece
// of checkpointed state: strided loads and stores missing all cache
// levels, dependencies, and repeats.
func ckptTrace(n int) []trace.Record {
	recs := make([]trace.Record, n)
	for i := range recs {
		kind := trace.Load
		if i%3 == 0 {
			kind = trace.Store
		}
		// The footprint wraps so later passes hit the L2 (and, for the
		// stacked configurations, read the DRAM data array).
		recs[i] = trace.Record{
			ID: uint64(i), Dep: trace.NoDep,
			Addr: uint64(i%1250) * 4096,
			PC:   0x400000 + uint64(i%7)*4,
			CPU:  uint8(i % 2), Kind: kind,
			Reps: uint8(i % 4),
		}
		if i > 2 && i%5 == 0 {
			recs[i].Dep = uint64(i - 2)
		}
	}
	return recs
}

// runResumed replays recs with a checkpoint at interruptAt records,
// then resumes from the file in a fresh simulator and runs to the end,
// as if the first process had been killed.
func runResumed(t *testing.T, cfg Config, recs []trace.Record, interruptAt int) Result {
	t.Helper()
	path := filepath.Join(t.TempDir(), "run.ckpt")

	first := mustSim(t, cfg)
	_, err := first.Run(context.Background(), trace.NewSliceStream(recs), RunOptions{
		Limit: interruptAt, CheckpointEvery: interruptAt, CheckpointPath: path,
	})
	if err != nil {
		t.Fatalf("interrupted run: %v", err)
	}

	cp, err := LoadCheckpoint(path)
	if err != nil {
		t.Fatalf("loading checkpoint: %v", err)
	}
	if cp.Records != uint64(interruptAt) {
		t.Fatalf("checkpoint at record %d, want %d", cp.Records, interruptAt)
	}
	second := mustSim(t, cfg)
	res, err := second.Run(context.Background(), trace.NewSliceStream(recs), RunOptions{Resume: cp})
	if err != nil {
		t.Fatalf("resumed run: %v", err)
	}
	return res
}

func TestCheckpointResumeBitIdentical(t *testing.T) {
	recs := ckptTrace(5000)
	for _, cfg := range []Config{BaselineConfig(), StackedDRAMConfig(32)} {
		uninterrupted, err := mustSim(t, cfg).Run(context.Background(), trace.NewSliceStream(recs), RunOptions{})
		if err != nil {
			t.Fatal(err)
		}
		resumed := runResumed(t, cfg, recs, 2000)
		if !reflect.DeepEqual(uninterrupted, resumed) {
			t.Errorf("%s: resumed result differs from uninterrupted run:\nuninterrupted: %+v\nresumed:       %+v",
				cfg.L2Type, uninterrupted, resumed)
		}
	}
}

func TestCheckpointResumeWithFaultsBitIdentical(t *testing.T) {
	// The fault schedule is a pure function of (seed, draw counter);
	// restoring the counters must resume it exactly.
	cfg := StackedDRAMConfig(32)
	cfg.Faults = fault.Config{
		Seed:                    7,
		CorrectablePerMAccess:   5000,
		UncorrectablePerMAccess: 500,
	}
	recs := ckptTrace(5000)
	uninterrupted, err := mustSim(t, cfg).Run(context.Background(), trace.NewSliceStream(recs), RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if uninterrupted.Faults.ECCChecks == 0 {
		t.Fatal("test trace never touched the faulty DRAM cache")
	}
	resumed := runResumed(t, cfg, recs, 2500)
	if !reflect.DeepEqual(uninterrupted, resumed) {
		t.Errorf("fault-injected resume differs:\nuninterrupted: %+v\nresumed:       %+v",
			uninterrupted, resumed)
	}
}

func TestCheckpointRefusesCorruptFile(t *testing.T) {
	cfg := BaselineConfig()
	recs := ckptTrace(1000)
	path := filepath.Join(t.TempDir(), "run.ckpt")
	_, err := mustSim(t, cfg).Run(context.Background(), trace.NewSliceStream(recs), RunOptions{
		CheckpointEvery: 500, CheckpointPath: path,
	})
	if err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}

	cases := []struct {
		name   string
		mangle func([]byte) []byte
	}{
		{"truncated", func(b []byte) []byte { return b[:len(b)/2] }},
		{"bit flip", func(b []byte) []byte {
			c := append([]byte(nil), b...)
			c[len(c)/2] ^= 0x40
			return c
		}},
		{"bad magic", func(b []byte) []byte {
			c := append([]byte(nil), b...)
			copy(c, "NOPE")
			return c
		}},
		{"empty", func([]byte) []byte { return nil }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			bad := filepath.Join(t.TempDir(), "bad.ckpt")
			if err := os.WriteFile(bad, tc.mangle(raw), 0o600); err != nil {
				t.Fatal(err)
			}
			if _, err := LoadCheckpoint(bad); !errors.Is(err, ErrCorruptCheckpoint) {
				t.Fatalf("want ErrCorruptCheckpoint, got %v", err)
			}
		})
	}
}

func TestCheckpointRefusesWrongTrace(t *testing.T) {
	cfg := BaselineConfig()
	recs := ckptTrace(1000)
	path := filepath.Join(t.TempDir(), "run.ckpt")
	_, err := mustSim(t, cfg).Run(context.Background(), trace.NewSliceStream(recs), RunOptions{
		CheckpointEvery: 500, CheckpointPath: path,
	})
	if err != nil {
		t.Fatal(err)
	}
	cp, err := LoadCheckpoint(path)
	if err != nil {
		t.Fatal(err)
	}

	t.Run("different content", func(t *testing.T) {
		other := ckptTrace(1000)
		other[100].Addr ^= 0x1000
		_, err := mustSim(t, cfg).Run(context.Background(), trace.NewSliceStream(other), RunOptions{Resume: cp})
		if !errors.Is(err, ErrCheckpointMismatch) {
			t.Fatalf("want ErrCheckpointMismatch, got %v", err)
		}
	})
	t.Run("trace too short", func(t *testing.T) {
		_, err := mustSim(t, cfg).Run(context.Background(), trace.NewSliceStream(recs[:100]), RunOptions{Resume: cp})
		if !errors.Is(err, ErrCheckpointMismatch) {
			t.Fatalf("want ErrCheckpointMismatch, got %v", err)
		}
	})
	t.Run("different machine", func(t *testing.T) {
		_, err := mustSim(t, StackedDRAMConfig(32)).Run(context.Background(), trace.NewSliceStream(recs), RunOptions{Resume: cp})
		if !errors.Is(err, ErrCheckpointMismatch) {
			t.Fatalf("want ErrCheckpointMismatch, got %v", err)
		}
	})
}

func TestRunContextCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	recs := ckptTrace(20000)
	_, err := mustSim(t, BaselineConfig()).Run(ctx, trace.NewSliceStream(recs), RunOptions{CancelEvery: 1})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
}

func TestCheckpointEveryRequiresPath(t *testing.T) {
	recs := ckptTrace(10)
	_, err := mustSim(t, BaselineConfig()).Run(context.Background(), trace.NewSliceStream(recs), RunOptions{CheckpointEvery: 5})
	if err == nil {
		t.Fatal("CheckpointEvery without CheckpointPath should be rejected")
	}
}
