// Package memhier implements the trace-driven multi-processor memory
// hierarchy simulator used for the Memory+Logic stacking study
// (Section 3 of the paper).
//
// The simulator replays dependency-annotated memory traces against a
// two-level hierarchy: per-core L1 instruction/data caches, a shared
// second-level cache (planar SRAM, stacked SRAM, or stacked DRAM with
// on-die tags), an off-die bus with finite bandwidth, and banked DDR
// main memory. It honors the dependency field of every trace record —
// a record is not issued before the record it depends on completes —
// and reports the paper's metrics: cycles per memory access (CPMA),
// off-die bandwidth, and bus power.
package memhier

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"

	"diestack/internal/cache"
	"diestack/internal/dram"
	"diestack/internal/fault"
	"diestack/internal/obs"
	"diestack/internal/stats"
	"diestack/internal/trace"
)

// L2Kind selects the shared second-level cache implementation.
type L2Kind uint8

const (
	// L2SRAM is a conventional SRAM L2 with a fixed hit latency.
	L2SRAM L2Kind = iota
	// L2DRAM is a stacked DRAM cache: on-die SRAM tags plus a banked
	// DRAM data array reached over die-to-die vias.
	L2DRAM
)

// String names the L2 kind.
func (k L2Kind) String() string {
	switch k {
	case L2SRAM:
		return "sram"
	case L2DRAM:
		return "dram"
	default:
		return fmt.Sprintf("L2Kind(%d)", uint8(k))
	}
}

// Config describes the simulated machine.
type Config struct {
	// Cores is the number of logical processors issuing references.
	Cores int
	// L1I and L1D are the per-core first-level caches.
	L1I, L1D cache.Config
	// L2 is the shared second-level cache geometry. For L2DRAM the
	// Latency field is the on-die tag lookup latency; the data access
	// goes through DRAMArray.
	L2 cache.Config
	// L2Type selects SRAM or stacked-DRAM L2.
	L2Type L2Kind
	// DRAMArray is the stacked DRAM data array (only for L2DRAM).
	DRAMArray dram.Config
	// Memory is the DDR main memory device; its Overhead models the
	// off-die interface so that a page-open access totals the paper's
	// 192 cycles.
	Memory dram.Config
	// BusBytesPerCycle is the off-die bus bandwidth in bytes per core
	// cycle (16 GB/s at 3.2 GHz = 5 B/cycle).
	BusBytesPerCycle float64
	// CoreGHz converts cycles to wall time for bandwidth reporting.
	CoreGHz float64
	// BusPicoJoulePerBit prices off-die bus traffic. The paper assumes
	// 20 mW per Gb/s, i.e. 20 pJ per bit.
	BusPicoJoulePerBit float64
	// MaxOutstanding bounds the number of in-flight L1 misses per core
	// (the MSHR limit). Zero selects DefaultMaxOutstanding.
	MaxOutstanding int
	// WindowRecords bounds how far a core's issue can run ahead of an
	// incomplete older record (the reorder-buffer depth, in trace
	// records). Zero selects DefaultWindowRecords.
	WindowRecords int
	// Faults configures deterministic fault injection on the stacked
	// DRAM cache: ECC events on its reads, dead banks with remapping,
	// and die-to-die via lane failures. Main memory is assumed
	// protected by its own off-package ECC and is not perturbed. The
	// zero value disables injection.
	Faults fault.Config
}

// DefaultMaxOutstanding is the per-core in-flight miss limit used when
// Config.MaxOutstanding is zero, sized like a Core-2-era machine.
const DefaultMaxOutstanding = 12

// DefaultWindowRecords is the per-core reorder window used when
// Config.WindowRecords is zero. References issue out of order past a
// stalled dependent access until the window fills.
const DefaultWindowRecords = 48

// Validate reports configuration errors.
func (c Config) Validate() error {
	if c.Cores <= 0 || c.Cores > 255 {
		return fmt.Errorf("memhier: Cores must be in [1,255], got %d", c.Cores)
	}
	for _, sub := range []struct {
		name string
		cfg  cache.Config
	}{{"L1I", c.L1I}, {"L1D", c.L1D}, {"L2", c.L2}} {
		if err := sub.cfg.Validate(); err != nil {
			return fmt.Errorf("memhier: %s: %w", sub.name, err)
		}
	}
	if c.L2Type == L2DRAM {
		if err := c.DRAMArray.Validate(); err != nil {
			return fmt.Errorf("memhier: DRAMArray: %w", err)
		}
	}
	if err := c.Memory.Validate(); err != nil {
		return fmt.Errorf("memhier: Memory: %w", err)
	}
	if c.BusBytesPerCycle <= 0 {
		return fmt.Errorf("memhier: BusBytesPerCycle must be positive, got %v", c.BusBytesPerCycle)
	}
	if c.CoreGHz <= 0 {
		return fmt.Errorf("memhier: CoreGHz must be positive, got %v", c.CoreGHz)
	}
	if c.BusPicoJoulePerBit < 0 {
		return fmt.Errorf("memhier: negative BusPicoJoulePerBit")
	}
	if c.MaxOutstanding < 0 {
		return fmt.Errorf("memhier: negative MaxOutstanding")
	}
	if c.WindowRecords < 0 {
		return fmt.Errorf("memhier: negative WindowRecords")
	}
	if err := c.Faults.Validate(); err != nil {
		return fmt.Errorf("memhier: Faults: %w", err)
	}
	if c.L2Type == L2DRAM && len(c.Faults.DeadBanks) > 0 {
		if err := c.Faults.ValidateBanks(c.DRAMArray.Banks); err != nil {
			return fmt.Errorf("memhier: Faults: %w", err)
		}
	}
	return nil
}

// maxOutstanding resolves the configured or default MSHR limit.
func (c Config) maxOutstanding() int {
	if c.MaxOutstanding > 0 {
		return c.MaxOutstanding
	}
	return DefaultMaxOutstanding
}

// windowRecords resolves the configured or default reorder window.
func (c Config) windowRecords() int {
	if c.WindowRecords > 0 {
		return c.WindowRecords
	}
	return DefaultWindowRecords
}

// Result reports one simulation run.
type Result struct {
	// Records is the number of trace records replayed.
	Records uint64
	// Refs is the number of memory references the records represent
	// (records plus their same-line repeats).
	Refs uint64
	// Cycles is the wall-clock cycle at which the last reference
	// completed.
	Cycles int64
	// CPMA is cycles per memory access — wall-clock cycles divided by
	// the reference count, the paper's headline metric. With two cores
	// each issuing one reference per cycle its floor is 0.5.
	CPMA float64
	// RepHits counts the same-line repeat accesses replayed as L1 hits.
	RepHits uint64
	// AvgLatency is the mean issue-to-completion latency of a
	// reference in cycles.
	AvgLatency float64
	// LatencyP50, LatencyP95 and LatencyP99 are quantiles of the
	// per-record issue-to-completion latency (histogram-approximated;
	// repeats excluded).
	LatencyP50, LatencyP95, LatencyP99 float64
	// OffDieBytes counts all traffic over the off-die bus (fills +
	// writebacks).
	OffDieBytes uint64
	// BandwidthGBs is the average off-die bandwidth in GB/s.
	BandwidthGBs float64
	// BusPowerW is the average bus power implied by the traffic.
	BusPowerW float64
	// Cache and device statistics.
	L1I, L1D, L2 cache.Stats
	DRAMCache    dram.Stats
	Memory       dram.Stats
	// Invalidations counts cross-core L1 coherence invalidations.
	Invalidations uint64
	// Faults reports the injected-fault and recovery counters
	// (all-zero when injection is disabled).
	Faults fault.Stats
}

// Simulator replays traces against one machine configuration. It is
// not safe for concurrent use; create one per goroutine.
type Simulator struct {
	cfg  Config
	l1i  []*cache.Cache
	l1d  []*cache.Cache
	l2   *cache.Cache
	darr *dram.Device // stacked DRAM data array, nil for SRAM L2
	mem  *dram.Device
	inj  *fault.Injector // nil when fault injection is disabled

	busFree     int64
	offDieBytes uint64
	invals      uint64
	repHits     uint64
	latencies   *stats.Histogram

	// Periodic-checkpoint scratch, reused across snapshots of one run so
	// a checkpointed replay does not regrow the snapshot slices and
	// encode buffer every interval.
	cpScratch Checkpoint
	cpBuf     bytes.Buffer

	// obs holds the replay's observability instruments, all nil (no-op)
	// unless RunOptions.Obs installed real ones. Kept out of Config so
	// checkpointed configs stay plain serializable data.
	obs simObs
}

// simObs is the per-simulator instrument set resolved by bindObs.
type simObs struct {
	records, refs        *obs.Counter
	l1Hits, l1Misses     *obs.Counter
	l2Hits, l2Misses     *obs.Counter
	writebacks, busBytes *obs.Counter
	latency              *obs.Histogram
}

// bindObs resolves the simulator's instruments against reg (nil
// detaches everything) and attaches the DRAM devices and the fault
// injector.
func (s *Simulator) bindObs(reg *obs.Registry) {
	if reg == nil {
		s.obs = simObs{}
	} else {
		s.obs = simObs{
			records:    reg.Counter("memhier_records"),
			refs:       reg.Counter("memhier_refs"),
			l1Hits:     reg.Counter("memhier_l1_hits"),
			l1Misses:   reg.Counter("memhier_l1_misses"),
			l2Hits:     reg.Counter("memhier_l2_hits"),
			l2Misses:   reg.Counter("memhier_l2_misses"),
			writebacks: reg.Counter("memhier_writebacks"),
			busBytes:   reg.Counter("memhier_bus_bytes"),
			latency:    reg.Histogram("memhier_latency_cycles", 0, 2048, 64),
		}
	}
	if s.darr != nil {
		s.darr.AttachObs(reg, "dram_cache")
	}
	s.mem.AttachObs(reg, "dram_mem")
	if s.inj != nil {
		s.inj.AttachObs(reg)
	}
}

// New builds a simulator, returning an error for invalid configs.
func New(cfg Config) (*Simulator, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	s := &Simulator{cfg: cfg}
	for i := 0; i < cfg.Cores; i++ {
		s.l1i = append(s.l1i, cache.New(cfg.L1I))
		s.l1d = append(s.l1d, cache.New(cfg.L1D))
	}
	s.l2 = cache.New(cfg.L2)
	if cfg.L2Type == L2DRAM {
		s.darr = dram.New(cfg.DRAMArray)
	}
	s.mem = dram.New(cfg.Memory)
	if cfg.Faults.Enabled() {
		inj, err := fault.New(cfg.Faults)
		if err != nil {
			return nil, fmt.Errorf("memhier: Faults: %w", err)
		}
		s.inj = inj
		// Attach only a real model: a typed-nil *DRAMModel in the
		// interface would put a no-op call on every DRAM access.
		if dm := inj.DRAM(); dm != nil && s.darr != nil {
			s.darr.AttachFaults(dm)
		}
	}
	// One-cycle buckets through the L2 range, coarser beyond; 0..2048
	// covers everything up to several memory round trips.
	s.latencies = stats.NewHistogram(0, 2048, 512)
	return s, nil
}

// Config returns the machine configuration.
func (s *Simulator) Config() Config { return s.cfg }

// depWindow is the sliding completion-time window size, in records.
// Dependencies in real traces reach back a bounded distance; a
// reference older than the window completed long before the dependent
// record can issue, so a window miss is treated as already complete.
// This bounds memory for billion-record traces.
const depWindow = 1 << 20

// runState is the replay loop's mutable state, extracted so a run can
// be checkpointed mid-stream and resumed bit-identically.
type runState struct {
	slot []int64 // per-core program-order issue slot
	// Completion times in a sliding window keyed by record id.
	doneID []uint64
	doneAt []int64
	// Per-core MSHR ring: the completion times of the last M in-flight
	// misses. A new reference cannot issue until the M-th previous miss
	// has completed, bounding memory-level parallelism the way a real
	// core's miss queue and reorder buffer do.
	mshr    [][]int64
	mshrPos []int
	// Per-core reorder window: a record cannot issue until the record
	// WindowRecords older than it has completed. Independent records
	// issue out of order past a stalled dependence up to this depth.
	rob    [][]int64
	robPos []int

	records, refs uint64
	wall, sumLat  int64
	// hash is a rolling FNV-style digest of every record consumed, used
	// to refuse resuming a checkpoint against a different trace.
	hash uint64
}

func newRunState(cfg Config) *runState {
	st := &runState{
		slot:   make([]int64, cfg.Cores),
		doneID: make([]uint64, depWindow),
		doneAt: make([]int64, depWindow),
		hash:   1469598103934665603, // FNV-1a offset basis
	}
	for i := range st.doneID {
		st.doneID[i] = ^uint64(0)
	}
	mshrN := cfg.maxOutstanding()
	st.mshr = make([][]int64, cfg.Cores)
	st.mshrPos = make([]int, cfg.Cores)
	for i := range st.mshr {
		st.mshr[i] = make([]int64, mshrN)
	}
	robN := cfg.windowRecords()
	st.rob = make([][]int64, cfg.Cores)
	st.robPos = make([]int, cfg.Cores)
	for i := range st.rob {
		st.rob[i] = make([]int64, robN)
	}
	return st
}

// hashRecord folds one record into a rolling FNV-1a-style digest.
//
//stacklint:hotpath
func hashRecord(h uint64, rec trace.Record) uint64 {
	const prime = 1099511628211
	for _, v := range [...]uint64{rec.ID, rec.Dep, rec.Addr, rec.PC,
		uint64(rec.CPU), uint64(rec.Kind), uint64(rec.Reps)} {
		h = (h ^ v) * prime
	}
	return h
}

// absorb folds one consumed record into the stream digest.
//
//stacklint:hotpath
func (st *runState) absorb(rec trace.Record) { st.hash = hashRecord(st.hash, rec) }

// RunOptions supervises a Run replay. The zero value replays the whole
// stream unsupervised.
type RunOptions struct {
	// Limit stops the replay after this many records (0 = no limit).
	// On a resumed run the count includes records replayed before the
	// checkpoint was taken.
	Limit int
	// CheckpointEvery, when positive, snapshots the full simulator
	// state to CheckpointPath every that many records.
	CheckpointEvery int
	// CheckpointPath is the checkpoint file, written atomically
	// (temp file + rename) so a kill mid-write never corrupts the
	// previous snapshot.
	CheckpointPath string
	// Resume, when non-nil, restores the simulator from the checkpoint
	// before replaying. The stream must be the same trace from its
	// first record; the run skips to the checkpoint position, verifying
	// the stream digest along the way.
	Resume *Checkpoint
	// CancelEvery is how many records pass between context checks
	// (default 4096).
	CancelEvery int
	// Obs, when non-nil, receives replay metrics — memhier_records,
	// memhier_refs, L1/L2 hit and miss counters, memhier_writebacks,
	// memhier_bus_bytes, a memhier_latency_cycles histogram — plus the
	// attached DRAM devices' row-buffer counters (dram_cache_*,
	// dram_mem_*), the fault injector's injection counters, and a
	// "memhier/replay" span. A nil registry keeps the replay loop
	// allocation-free and observability-free.
	Obs *obs.Registry
}

// Run replays the stream under supervision: cooperative cancellation
// via ctx (checked every opt.CancelEvery records), periodic
// checkpointing, and resumption from a prior checkpoint. A resumed run
// produces a Result bit-identical to an uninterrupted one. The zero
// RunOptions replays the whole stream unsupervised.
//
//stacklint:hotpath
func (s *Simulator) Run(ctx context.Context, stream trace.Stream, opt RunOptions) (Result, error) {
	cancelEvery := opt.CancelEvery
	if cancelEvery <= 0 {
		cancelEvery = 4096
	}
	s.bindObs(opt.Obs)
	sp := opt.Obs.StartSpan("memhier/replay")
	defer sp.End()
	st := newRunState(s.cfg)
	if opt.Resume != nil {
		if err := s.restore(st, opt.Resume, stream); err != nil {
			return Result{}, err
		}
	}
	if opt.CheckpointEvery > 0 && opt.CheckpointPath == "" {
		return Result{}, errors.New("memhier: CheckpointEvery set without CheckpointPath")
	}

	l1Lat := s.cfg.L1D.Latency
	sinceCancel := 0
	for {
		if opt.Limit > 0 && st.records >= uint64(opt.Limit) {
			break
		}
		if sinceCancel++; sinceCancel >= cancelEvery {
			sinceCancel = 0
			if err := ctx.Err(); err != nil {
				return Result{}, fmt.Errorf("memhier: replay canceled after %d records: %w", st.records, err)
			}
		}
		rec, err := stream.Next()
		if errors.Is(err, io.EOF) {
			break
		}
		if err != nil {
			return Result{}, fmt.Errorf("memhier: reading trace: %w", err)
		}
		if int(rec.CPU) >= s.cfg.Cores {
			return Result{}, fmt.Errorf("memhier: record %d names cpu %d but machine has %d cores",
				rec.ID, rec.CPU, s.cfg.Cores)
		}
		st.absorb(rec)
		cpu := int(rec.CPU)

		issue := st.slot[cpu]
		if rec.HasDep() {
			w := rec.Dep % depWindow
			if st.doneID[w] == rec.Dep && st.doneAt[w] > issue {
				issue = st.doneAt[w]
			}
		}
		if oldest := st.mshr[cpu][st.mshrPos[cpu]]; oldest > issue {
			issue = oldest
		}
		if oldest := st.rob[cpu][st.robPos[cpu]]; oldest > issue {
			issue = oldest
		}

		completion := s.access(issue, cpu, rec.Addr, rec.Kind)
		if completion-issue > l1Lat {
			// The reference went past the L1: it held a miss slot.
			st.mshr[cpu][st.mshrPos[cpu]] = completion
			st.mshrPos[cpu] = (st.mshrPos[cpu] + 1) % len(st.mshr[cpu])
		}

		s.latencies.Add(float64(completion - issue))
		s.obs.latency.Observe(float64(completion - issue))

		// Replay the same-line repeats as back-to-back L1 hits: one
		// issue slot each, completing L1-latency later. The program
		// slot advances one cycle per reference; dependence stalls do
		// not drag it forward — younger independent records may issue
		// at their own slots (out-of-order issue within the window).
		reps := int64(rec.Reps)
		st.slot[cpu] += 1 + reps
		st.refs += uint64(1 + reps)
		s.obs.records.Inc()
		s.obs.refs.Add(uint64(1 + reps))
		st.sumLat += (completion - issue) + reps*l1Lat
		s.repHits += uint64(reps)
		repDone := issue + reps + l1Lat
		if repDone > completion {
			completion = repDone
		}

		st.rob[cpu][st.robPos[cpu]] = completion
		st.robPos[cpu] = (st.robPos[cpu] + 1) % len(st.rob[cpu])

		w := rec.ID % depWindow
		st.doneID[w] = rec.ID
		st.doneAt[w] = completion
		if completion > st.wall {
			st.wall = completion
		}
		st.records++

		if opt.CheckpointEvery > 0 && st.records%uint64(opt.CheckpointEvery) == 0 {
			if err := saveCheckpoint(opt.CheckpointPath, s.checkpoint(st), &s.cpBuf); err != nil {
				return Result{}, fmt.Errorf("memhier: writing checkpoint at record %d: %w", st.records, err)
			}
		}
	}

	return s.result(st), nil
}

// result aggregates the final Result from the loop state.
func (s *Simulator) result(st *runState) Result {
	if st.refs == 0 {
		return Result{}
	}
	res := Result{
		Records:       st.records,
		Refs:          st.refs,
		Cycles:        st.wall,
		CPMA:          float64(st.wall) / float64(st.refs),
		AvgLatency:    float64(st.sumLat) / float64(st.refs),
		LatencyP50:    s.latencies.Quantile(0.50),
		LatencyP95:    s.latencies.Quantile(0.95),
		LatencyP99:    s.latencies.Quantile(0.99),
		OffDieBytes:   s.offDieBytes,
		L2:            s.l2.Stats(),
		Memory:        s.mem.Stats(),
		Invalidations: s.invals,
		RepHits:       s.repHits,
	}
	for i := 0; i < s.cfg.Cores; i++ {
		res.L1I = addCacheStats(res.L1I, s.l1i[i].Stats())
		res.L1D = addCacheStats(res.L1D, s.l1d[i].Stats())
	}
	if s.darr != nil {
		res.DRAMCache = s.darr.Stats()
	}
	if s.inj != nil {
		res.Faults = s.inj.Stats()
	}
	seconds := float64(st.wall) / (s.cfg.CoreGHz * 1e9)
	if seconds > 0 {
		res.BandwidthGBs = float64(s.offDieBytes) / seconds / 1e9
	}
	// pJ/bit x bits/s = pW; x1e-12 = W. GB/s x 8e9 = bits/s.
	res.BusPowerW = s.cfg.BusPicoJoulePerBit * res.BandwidthGBs * 8e9 * 1e-12
	return res
}

func addCacheStats(a, b cache.Stats) cache.Stats {
	return cache.Stats{
		Accesses:    a.Accesses + b.Accesses,
		Hits:        a.Hits + b.Hits,
		SectorMiss:  a.SectorMiss + b.SectorMiss,
		LineMiss:    a.LineMiss + b.LineMiss,
		Evictions:   a.Evictions + b.Evictions,
		Writebacks:  a.Writebacks + b.Writebacks,
		Invalidates: a.Invalidates + b.Invalidates,
	}
}

// access services one reference beginning at cycle now and returns the
// completion cycle.
//
//stacklint:hotpath
func (s *Simulator) access(now int64, cpu int, addr uint64, kind trace.Kind) int64 {
	l1 := s.l1d[cpu]
	if kind == trace.Ifetch {
		l1 = s.l1i[cpu]
	}
	write := kind == trace.Store

	if write {
		s.invalidateOthers(cpu, addr, now)
	}

	out := l1.Access(addr, write)
	t := now + l1.Config().Latency
	if out.Hit {
		s.obs.l1Hits.Inc()
		return t
	}
	s.obs.l1Misses.Inc()
	// A displaced dirty L1 line is written back into the shared L2
	// off the critical path.
	if out.Evicted && out.Eviction.Dirty {
		s.l2Access(t, out.Eviction.Addr, true)
	}
	return s.l2Access(t, addr, false)
}

// invalidateOthers performs the cross-core coherence action for a
// store: every other core's L1D copy of the line is invalidated, and a
// dirty copy is flushed into the shared L2 first (off the critical
// path of the store itself).
//
//stacklint:hotpath
func (s *Simulator) invalidateOthers(cpu int, addr uint64, now int64) {
	for i, other := range s.l1d {
		if i == cpu {
			continue
		}
		if ev, ok := other.Invalidate(addr); ok {
			s.invals++
			if ev.Dirty {
				s.l2Access(now, ev.Addr, true)
			}
		}
	}
}

// l2Access reads (fill request) or writes (L1 writeback) the shared L2
// at time t, returning the completion cycle.
//
//stacklint:hotpath
func (s *Simulator) l2Access(t int64, addr uint64, write bool) int64 {
	out := s.l2.Access(addr, write)
	tagDone := t + s.l2.Config().Latency
	if out.Hit {
		s.obs.l2Hits.Inc()
	} else {
		s.obs.l2Misses.Inc()
	}

	if s.cfg.L2Type == L2SRAM {
		if out.Hit {
			return tagDone
		}
		s.handleL2Eviction(tagDone, out)
		// Fill the line from main memory over the bus.
		return s.memAccess(tagDone, addr, false, s.cfg.L2.LineBytes)
	}

	// Stacked DRAM L2: tags live on the CPU die (tagDone covers the
	// lookup); data lives in the stacked DRAM array.
	switch {
	case out.Hit:
		// Tag lookup (on the CPU die) and DRAM row access (through the
		// die-to-die vias) are overlapped, as in aggressive cache-DRAM
		// designs; the access completes when both have.
		dataDone, _ := s.darr.Access(t, addr, write)
		if dataDone < tagDone {
			dataDone = tagDone
		}
		// Reads pass through the SECDED ECC model; writes carry freshly
		// encoded check bits and cannot fault on the way in.
		if s.inj != nil && !write {
			switch s.inj.CheckRead() {
			case fault.ECCCorrected:
				retry := s.inj.RetryCycles()
				s.inj.CountRetryCycles(retry)
				dataDone += retry
			case fault.ECCUncorrectable:
				dataDone = s.recoverUncorrectable(dataDone, addr)
			}
		}
		return dataDone
	case out.LineHit:
		// Sector miss: fetch just the missing 64 B sector from memory,
		// then deposit it in the DRAM array (deposit off critical path).
		fill := s.memAccess(tagDone, addr, false, sectorBytes(s.cfg.L2))
		s.darr.Access(fill, addr, true)
		return fill
	default:
		s.handleL2Eviction(tagDone, out)
		fill := s.memAccess(tagDone, addr, false, sectorBytes(s.cfg.L2))
		s.darr.Access(fill, addr, true)
		return fill
	}
}

// recoverUncorrectable handles an uncorrectable ECC event on a stacked
// DRAM cache read completing at time t: the poisoned line is dropped
// from the tags, the sector is refetched from main memory, re-deposited
// in the DRAM array, and re-checked. Refetches repeat with bounded
// exponential backoff; if the line still will not verify after the
// configured retry budget the access is served from the memory fill and
// the line stays invalid (counted as Unrecovered).
//
//stacklint:hotpath
func (s *Simulator) recoverUncorrectable(t int64, addr uint64) int64 {
	s.inj.CountPoisoned()
	// Drop the poisoned line; a dirty line's data is lost, which the
	// SECDED model cannot repair — the refetch restores memory's copy.
	s.l2.Invalidate(addr)
	backoff := s.inj.BackoffBase()
	granule := sectorBytes(s.cfg.L2)
	for attempt := 0; ; attempt++ {
		s.inj.CountRefetch()
		fill := s.memAccess(t, addr, false, granule)
		done, _ := s.darr.Access(fill, addr, true)
		switch s.inj.CheckRead() {
		case fault.ECCUncorrectable:
			if attempt+1 >= s.inj.MaxRetries() {
				s.inj.CountUnrecovered()
				// Served straight from the memory fill; the tags stay
				// invalid, so the next touch misses back to memory.
				return done
			}
			s.inj.CountRetryCycles(backoff)
			t = done + backoff
			backoff *= 2
		case fault.ECCCorrected:
			retry := s.inj.RetryCycles()
			s.inj.CountRetryCycles(retry)
			return done + retry
		default:
			return done
		}
	}
}

// sectorBytes returns the fill granule for a cache: the sector size
// when sectored, else the full line.
//
//stacklint:hotpath
func sectorBytes(c cache.Config) uint64 {
	if c.SectorBytes != 0 {
		return c.SectorBytes
	}
	return c.LineBytes
}

// handleL2Eviction writes dirty evicted data back to main memory.
//
//stacklint:hotpath
func (s *Simulator) handleL2Eviction(t int64, out cache.Outcome) {
	if !out.Evicted || !out.Eviction.Dirty {
		return
	}
	granule := sectorBytes(s.cfg.L2)
	n := popcount(out.Eviction.DirtySectors)
	if s.cfg.L2.SectorBytes == 0 {
		n = 1
	}
	s.obs.writebacks.Inc()
	s.memAccess(t, out.Eviction.Addr, true, granule*uint64(n))
}

//stacklint:hotpath
func popcount(x uint64) int {
	n := 0
	for x != 0 {
		x &= x - 1
		n++
	}
	return n
}

// memAccess moves nbytes over the off-die bus and accesses main
// memory, returning the completion cycle. The bus is a shared FCFS
// resource with finite bandwidth; transfers queue behind each other.
//
//stacklint:hotpath
func (s *Simulator) memAccess(t int64, addr uint64, write bool, nbytes uint64) int64 {
	slot := int64(float64(nbytes)/s.cfg.BusBytesPerCycle + 0.5)
	if slot < 1 {
		slot = 1
	}
	start := t
	if s.busFree > start {
		start = s.busFree
	}
	s.busFree = start + slot
	s.offDieBytes += nbytes
	s.obs.busBytes.Add(nbytes)

	done, _ := s.mem.Access(start+slot, addr, write)
	return done
}
