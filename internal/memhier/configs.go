package memhier

import (
	"diestack/internal/cache"
	"diestack/internal/dram"
)

// The paper's machine parameters (Table 3), expressed as configuration
// constructors. All latencies are core cycles at the assumed 3.2 GHz
// clock; the 16 GB/s off-die bus therefore moves 5 bytes per cycle.
const (
	// DefaultCoreGHz is the assumed core clock for converting cycles
	// to seconds when reporting bandwidth.
	DefaultCoreGHz = 3.2
	// DefaultBusBytesPerCycle realizes the paper's 16 GB/s off-die bus.
	DefaultBusBytesPerCycle = 5.0
	// DefaultBusPicoJoulePerBit realizes the paper's 20 mW/Gb/s bus
	// power assumption.
	DefaultBusPicoJoulePerBit = 20.0
)

// l1Config returns the Table 3 first-level cache: 32 KB, 64 B line,
// 8-way, 4 cycles.
func l1Config() cache.Config {
	return cache.Config{SizeBytes: 32 << 10, LineBytes: 64, Ways: 8, Latency: 4}
}

// mainMemoryConfig returns the Table 3 DDR main memory: 16 banks, 4 KB
// pages, paper bank delays, and an interface overhead chosen so that a
// page-open access totals the paper's 192 cycles (50 open + 50 read +
// 92 interface).
func mainMemoryConfig() dram.Config {
	return dram.Config{
		Banks:        16,
		PageBytes:    4 << 10,
		Timing:       dram.PaperTiming(),
		Overhead:     92,
		PostedWrites: true,
	}
}

// stackedDRAMArray returns the stacked DRAM cache data array: 512 B
// pages, 16 address-interleaved banks, paper bank delays, and no
// interface overhead — the die-to-die vias behave like on-die wire
// (the paper: d2d RC is ~1/3 of a full via stack).
func stackedDRAMArray() dram.Config {
	t := dram.PaperTiming()
	// The die-to-die via interface is far wider than an off-die bus
	// (the paper: d2d vias have on-die-via electrical characteristics),
	// so a 64 B transfer holds the bank for half the off-die burst.
	t.Burst = 4
	return dram.Config{
		Banks:        16,
		PageBytes:    512,
		Timing:       t,
		RowBuffers:   16,
		PostedWrites: true,
	}
}

func base() Config {
	return Config{
		Cores:              2,
		L1I:                l1Config(),
		L1D:                l1Config(),
		Memory:             mainMemoryConfig(),
		BusBytesPerCycle:   DefaultBusBytesPerCycle,
		CoreGHz:            DefaultCoreGHz,
		BusPicoJoulePerBit: DefaultBusPicoJoulePerBit,
	}
}

// BaselineConfig is the planar Intel Core 2 Duo-class machine: two
// cores sharing a 4 MB, 16-way, 16-cycle SRAM L2 (Figure 4 / Table 3).
func BaselineConfig() Config {
	c := base()
	c.L2 = cache.Config{SizeBytes: 4 << 20, LineBytes: 64, Ways: 16, Latency: 16}
	c.L2Type = L2SRAM
	return c
}

// Stacked12MBConfig is stacking option (b): 8 MB of SRAM stacked on the
// baseline for a 12 MB, 24-cycle L2.
func Stacked12MBConfig() Config {
	c := base()
	c.L2 = cache.Config{SizeBytes: 12 << 20, LineBytes: 64, Ways: 24, Latency: 24}
	c.L2Type = L2SRAM
	return c
}

// StackedDRAMConfig is stacking options (c)/(d): a stacked DRAM L2 of
// sizeMB megabytes (4–64 in the paper's sweep) with 512 B pages, 64 B
// sectors, 16 banks, and on-die SRAM tags. Tag latency matches the
// baseline L2 tag path (16 cycles); access latency then grows with
// capacity through DRAM bank behaviour, matching the paper's "cache
// access latencies increase with cache size".
func StackedDRAMConfig(sizeMB int) Config {
	c := base()
	c.L2 = cache.Config{
		SizeBytes:   uint64(sizeMB) << 20,
		LineBytes:   512,
		Ways:        16,
		Latency:     16,
		SectorBytes: 64,
	}
	c.L2Type = L2DRAM
	c.DRAMArray = stackedDRAMArray()
	return c
}

// ConfigByCapacity returns the paper's Figure 5 sweep configuration
// for a last-level capacity in MB: 4 (planar SRAM baseline), 12
// (stacked SRAM), or 32/64 (stacked DRAM). Other DRAM capacities in
// 4..64 MB are also accepted for sensitivity studies.
func ConfigByCapacity(mb int) (Config, bool) {
	switch mb {
	case 4:
		return BaselineConfig(), true
	case 12:
		return Stacked12MBConfig(), true
	case 8, 16, 32, 64:
		return StackedDRAMConfig(mb), true
	default:
		return Config{}, false
	}
}
