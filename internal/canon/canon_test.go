package canon

import (
	"strings"
	"testing"
)

type wire struct {
	Seed   uint64   `json:"seed"`
	Scale  float64  `json:"scale"`
	Names  []string `json:"names,omitempty"`
	Method string   `json:"method,omitempty"`
}

func TestMarshalIsDeterministicAndOmitsDefaults(t *testing.T) {
	w := wire{Seed: 7, Scale: 0.5}
	a, err := Marshal(w)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Marshal(w)
	if err != nil {
		t.Fatal(err)
	}
	if string(a) != string(b) {
		t.Fatalf("non-deterministic encoding: %s vs %s", a, b)
	}
	if want := `{"seed":7,"scale":0.5}`; string(a) != want {
		t.Fatalf("encoding = %s, want %s", a, want)
	}
	if strings.Contains(string(a), "method") {
		t.Fatalf("default method not omitted: %s", a)
	}
}

func TestRoundTrip(t *testing.T) {
	in := wire{Seed: 3, Scale: 1, Names: []string{"gauss"}, Method: "multigrid"}
	raw, err := Marshal(in)
	if err != nil {
		t.Fatal(err)
	}
	var out wire
	if err := Unmarshal(raw, &out); err != nil {
		t.Fatal(err)
	}
	if out.Seed != in.Seed || out.Scale != in.Scale || out.Method != in.Method ||
		len(out.Names) != 1 || out.Names[0] != "gauss" {
		t.Fatalf("round trip lost data: %+v -> %+v", in, out)
	}
	// Re-encoding the decoded value reproduces the bytes exactly.
	raw2, err := Marshal(out)
	if err != nil {
		t.Fatal(err)
	}
	if string(raw) != string(raw2) {
		t.Fatalf("re-encode differs: %s vs %s", raw, raw2)
	}
}

func TestUnmarshalStrictness(t *testing.T) {
	var w wire
	if err := Unmarshal([]byte(`{"seed":1,"intruder":2}`), &w); err == nil {
		t.Error("unknown field accepted")
	}
	if err := Unmarshal([]byte(`{"seed":1}{"seed":2}`), &w); err == nil {
		t.Error("trailing data accepted")
	}
	if err := Unmarshal([]byte(`{garbage`), &w); err == nil {
		t.Error("malformed JSON accepted")
	}
}

func TestHashStability(t *testing.T) {
	// The hash of a canonical encoding is pinned: cache keys and worker
	// fencing both depend on it never drifting across releases.
	h, err := Hash(wire{Seed: 7, Scale: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	const want = "c2b128ba4221e2f4cd57158a06be350f1167a14282f922c7ad9257694f73db27"
	if h != want {
		t.Fatalf("Hash = %s, want %s", h, want)
	}
	if h2 := HashBytes([]byte(`{"seed":7,"scale":0.5}`)); h2 != h {
		t.Fatalf("HashBytes disagrees with Hash: %s vs %s", h2, h)
	}
}

func TestMarshalRejectsUnencodable(t *testing.T) {
	if _, err := Marshal(map[string]any{"f": func() {}}); err == nil {
		t.Error("func value encoded")
	}
	if _, err := Hash(make(chan int)); err == nil {
		t.Error("channel hashed")
	}
}
