// Package canon is the repo's canonical JSON codec: the single
// serialization used wherever two processes — or two points in time —
// must agree byte-for-byte on what a specification says. The
// distributed-campaign wire protocol hashes a canonical CampaignSpec to
// fence off mismatched workers, and the stackd simulation service
// hashes a canonical ExperimentRequest into its result-cache key; both
// go through this package so "equal specs" always means "equal bytes"
// means "equal hashes".
//
// Canonical form is compact JSON of a tagged Go struct. Determinism
// rests on two properties the codec pins down:
//
//   - Stable field order. encoding/json emits struct fields in
//     declaration order and sorts map keys, so the same value always
//     encodes to the same bytes. Wire structs must not contain
//     anything whose encoding is unstable (channels, funcs, NaN
//     floats); Marshal surfaces those as errors rather than producing
//     bytes that cannot round-trip.
//
//   - Omitted defaults. Wire structs tag defaultable fields
//     `omitempty`, so a zero-valued knob and an absent knob are the
//     same bytes. That keeps hashes stable when new optional fields
//     are introduced, and keeps old decoders (which reject unknown
//     fields) interoperable with new encoders that have nothing new
//     to say.
//
// Decoding is strict: unknown fields are rejected, so version skew
// between an encoder and a decoder fails loudly instead of silently
// dropping a parameter.
package canon

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
)

// Marshal encodes v in canonical form: compact JSON, struct fields in
// declaration order, map keys sorted. Equal values encode to equal
// bytes on every platform.
func Marshal(v any) ([]byte, error) {
	raw, err := json.Marshal(v)
	if err != nil {
		return nil, fmt.Errorf("canon: encoding %T: %w", v, err)
	}
	return raw, nil
}

// Unmarshal decodes canonical bytes into v, rejecting unknown fields so
// a decoder that is older than its encoder fails loudly instead of
// silently running with a dropped parameter.
func Unmarshal(data []byte, v any) error {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		return fmt.Errorf("canon: decoding into %T: %w", v, err)
	}
	// A canonical payload is exactly one JSON value.
	if dec.More() {
		return fmt.Errorf("canon: decoding into %T: trailing data", v)
	}
	return nil
}

// Hash returns the hex SHA-256 of v's canonical encoding — the cache
// and fencing key for the value.
func Hash(v any) (string, error) {
	raw, err := Marshal(v)
	if err != nil {
		return "", err
	}
	return HashBytes(raw), nil
}

// HashBytes returns the hex SHA-256 of an already-canonical encoding.
func HashBytes(raw []byte) string {
	sum := sha256.Sum256(raw)
	return hex.EncodeToString(sum[:])
}
