// Ablation benchmarks for the design choices DESIGN.md calls out:
// each one re-runs a representative experiment with a single mechanism
// disabled or resized, printing the resulting metric next to the
// default. Run with:
//
//	go test -run NONE -bench Ablation -benchtime 1x .
package diestack_test

import (
	"context"
	"fmt"
	"testing"

	"diestack/internal/core"
	"diestack/internal/dram"
	"diestack/internal/memhier"
	"diestack/internal/thermal"
	"diestack/internal/trace"
	"diestack/internal/uarch"
	"diestack/internal/uarch/synth"
	"diestack/internal/workload"
)

// runDRAMCacheCPMA replays a benchmark on a 32 MB stacked-DRAM
// configuration after applying cfgMod.
func runDRAMCacheCPMA(b *testing.B, recs []trace.Record, cfgMod func(*memhier.Config)) memhier.Result {
	b.Helper()
	cfg, _ := memhier.ConfigByCapacity(32)
	if cfgMod != nil {
		cfgMod(&cfg)
	}
	sim, err := memhier.New(cfg)
	if err != nil {
		b.Fatal(err)
	}
	res, err := sim.Run(context.Background(), trace.NewSliceStream(recs), memhier.RunOptions{})
	if err != nil {
		b.Fatal(err)
	}
	return res
}

// BenchmarkAblationSectoredFills compares the paper's 64 B sector
// fills against naive full-page (512 B) fills on the DRAM cache: the
// sector design is what keeps the fill traffic proportional to demand.
func BenchmarkAblationSectoredFills(b *testing.B) {
	bench, _ := workload.ByName("sMVM")
	recs := bench.Generate(1, 0.7)
	for i := 0; i < b.N; i++ {
		sect := runDRAMCacheCPMA(b, recs, nil)
		full := runDRAMCacheCPMA(b, recs, func(c *memhier.Config) {
			c.L2.SectorBytes = 0 // fills move whole 512 B pages
		})
		b.ReportMetric(sect.CPMA, "CPMA/sectored")
		b.ReportMetric(full.CPMA, "CPMA/fullpage")
		printOnce(b, i, func() {
			fmt.Printf("\nAblation: 64B sector fills vs 512B page fills (sMVM, 32MB DRAM cache)\n")
			fmt.Printf("  sectored:  CPMA %.3f, off-die %6.1f MB\n", sect.CPMA, float64(sect.OffDieBytes)/(1<<20))
			fmt.Printf("  full-page: CPMA %.3f, off-die %6.1f MB\n", full.CPMA, float64(full.OffDieBytes)/(1<<20))
		})
	}
}

// BenchmarkAblationRowBuffers sweeps the stacked array's open-row
// capacity (1 = classic single row buffer, 16 = FR-FCFS-style
// batching).
func BenchmarkAblationRowBuffers(b *testing.B) {
	bench, _ := workload.ByName("sUS")
	recs := bench.Generate(1, 0.7)
	for i := 0; i < b.N; i++ {
		var vals []float64
		depths := []int{1, 4, 16}
		for _, d := range depths {
			res := runDRAMCacheCPMA(b, recs, func(c *memhier.Config) {
				c.DRAMArray.RowBuffers = d
			})
			vals = append(vals, res.CPMA)
		}
		b.ReportMetric(vals[0], "CPMA/rb1")
		b.ReportMetric(vals[2], "CPMA/rb16")
		printOnce(b, i, func() {
			fmt.Printf("\nAblation: per-bank open-row capacity (sUS, 32MB DRAM cache)\n")
			for j, d := range depths {
				fmt.Printf("  %2d open rows: CPMA %.3f\n", d, vals[j])
			}
		})
	}
}

// BenchmarkAblationPostedWrites disables the DRAM write queue so
// writebacks and fills occupy banks at full cost.
func BenchmarkAblationPostedWrites(b *testing.B) {
	bench, _ := workload.ByName("sTrans")
	recs := bench.Generate(1, 0.7)
	for i := 0; i < b.N; i++ {
		posted := runDRAMCacheCPMA(b, recs, nil)
		blocking := runDRAMCacheCPMA(b, recs, func(c *memhier.Config) {
			c.DRAMArray.PostedWrites = false
		})
		b.ReportMetric(posted.CPMA, "CPMA/posted")
		b.ReportMetric(blocking.CPMA, "CPMA/blocking")
		printOnce(b, i, func() {
			fmt.Printf("\nAblation: posted vs blocking DRAM writes (sTrans, 32MB DRAM cache)\n")
			fmt.Printf("  posted:   CPMA %.3f\n  blocking: CPMA %.3f\n", posted.CPMA, blocking.CPMA)
		})
	}
}

// BenchmarkAblationReplayWindow sweeps the replay engine's reorder
// window, showing why strictly in-order issue (window 1) distorts the
// study.
func BenchmarkAblationReplayWindow(b *testing.B) {
	bench, _ := workload.ByName("pcg")
	recs := bench.Generate(1, 0.5)
	for i := 0; i < b.N; i++ {
		windows := []int{1, 8, 48, 192}
		var vals []float64
		for _, w := range windows {
			res := runDRAMCacheCPMA(b, recs, func(c *memhier.Config) {
				c.WindowRecords = w
			})
			vals = append(vals, res.CPMA)
		}
		b.ReportMetric(vals[0], "CPMA/win1")
		b.ReportMetric(vals[2], "CPMA/win48")
		printOnce(b, i, func() {
			fmt.Printf("\nAblation: replay reorder window (pcg, 32MB DRAM cache)\n")
			for j, w := range windows {
				fmt.Printf("  window %3d: CPMA %.3f\n", w, vals[j])
			}
		})
	}
}

// BenchmarkAblationBankHashing compares the hashed bank index against
// plain modulo interleaving, where 1 GB-aligned structures collide.
func BenchmarkAblationBankHashing(b *testing.B) {
	// The dram package always hashes; emulate "no hashing" by placing
	// two interleaved streams at bank-aliasing addresses and measuring
	// the raw device: same-bank conflicts vs spread accesses.
	for i := 0; i < b.N; i++ {
		dev := dram.New(dram.Config{Banks: 16, PageBytes: 512, Timing: dram.PaperTiming()})
		var aliasedDone, spreadDone int64
		// Aliased: two streams 8 KB apart within one bank's row space.
		now := int64(0)
		for j := 0; j < 2000; j++ {
			a := uint64(j/2) * 64
			if j%2 == 1 {
				a += 25 * 512 // same bank, different row (see dram tests)
			}
			d, _ := dev.Access(now, a, false)
			if d > aliasedDone {
				aliasedDone = d
			}
			now += 4
		}
		dev2 := dram.New(dram.Config{Banks: 16, PageBytes: 512, Timing: dram.PaperTiming()})
		now = 0
		for j := 0; j < 2000; j++ {
			a := uint64(j/2) * 64
			if j%2 == 1 {
				a += 3 * 512 // a different bank under any mapping
			}
			d, _ := dev2.Access(now, a, false)
			if d > spreadDone {
				spreadDone = d
			}
			now += 4
		}
		b.ReportMetric(float64(aliasedDone), "cycles/aliased")
		b.ReportMetric(float64(spreadDone), "cycles/spread")
		printOnce(b, i, func() {
			fmt.Printf("\nAblation: bank aliasing cost (2000 interleaved accesses)\n")
			fmt.Printf("  same-bank streams:     done at cycle %d\n", aliasedDone)
			fmt.Printf("  separate-bank streams: done at cycle %d\n", spreadDone)
		})
	}
}

// BenchmarkAblationFoldGroups runs the pipeline fold cumulatively to
// show the gain trajectory (which stages carry the 15%).
func BenchmarkAblationFoldGroups(b *testing.B) {
	cfg := uarch.PlanarConfig()
	for i := 0; i < b.N; i++ {
		base, err := synth.RunSuite(context.Background(), cfg, 1, 60_000)
		if err != nil {
			b.Fatal(err)
		}
		acc := uarch.Fold{}
		groups := synth.Table4Groups()
		var lastGain float64
		lines := make([]string, 0, len(groups))
		for _, g := range groups {
			acc = orFold(acc, g.Fold)
			res, err := synth.RunSuite(context.Background(), cfg.Apply(acc), 1, 60_000)
			if err != nil {
				b.Fatal(err)
			}
			lastGain = (res.IPC/base.IPC - 1) * 100
			lines = append(lines, fmt.Sprintf("  +%-26s cumulative %+6.2f%%", g.Name, lastGain))
		}
		b.ReportMetric(lastGain, "cumGain%")
		printOnce(b, i, func() {
			fmt.Printf("\nAblation: cumulative fold trajectory (suite average)\n")
			for _, l := range lines {
				fmt.Println(l)
			}
		})
	}
}

func orFold(a, c uarch.Fold) uarch.Fold {
	return uarch.Fold{
		FrontEnd:    a.FrontEnd || c.FrontEnd,
		TraceCache:  a.TraceCache || c.TraceCache,
		Rename:      a.Rename || c.Rename,
		FPLatency:   a.FPLatency || c.FPLatency,
		IntRF:       a.IntRF || c.IntRF,
		DCache:      a.DCache || c.DCache,
		Loop:        a.Loop || c.Loop,
		RetireDealc: a.RetireDealc || c.RetireDealc,
		FPLoad:      a.FPLoad || c.FPLoad,
		StoreLife:   a.StoreLife || c.StoreLife,
	}
}

// BenchmarkAblationThermalGrid checks grid-resolution convergence of
// the calibrated baseline peak.
func BenchmarkAblationThermalGrid(b *testing.B) {
	for i := 0; i < b.N; i++ {
		grids := []int{24, 48, 64, 96}
		var peaks []float64
		for _, g := range grids {
			rows, err := coreFigure6Peak(g)
			if err != nil {
				b.Fatal(err)
			}
			peaks = append(peaks, rows)
		}
		b.ReportMetric(peaks[len(peaks)-1]-peaks[0], "grid24to96C")
		printOnce(b, i, func() {
			fmt.Printf("\nAblation: thermal grid resolution (baseline planar peak)\n")
			for j, g := range grids {
				fmt.Printf("  %2dx%-2d: %.2f degC\n", g, g, peaks[j])
			}
		})
	}
}

func coreFigure6Peak(grid int) (float64, error) {
	_, tm, err := figure6(grid)
	if err != nil {
		return 0, err
	}
	peak := -1e9
	for _, row := range tm {
		for _, v := range row {
			if v > peak {
				peak = v
			}
		}
	}
	return peak, nil
}

// figure6 delegates to the core package's Figure 6 solver.
var figure6 = func(grid int) ([][]float64, [][]float64, error) {
	return core.Figure6Maps(context.Background(), core.RunSpec{Grid: grid})
}

var _ = thermal.AmbientC // anchor the thermal import for readability

// BenchmarkAblationPredictorMode re-measures the full fold's gain with
// a modeled gshare front end instead of annotated mispredictions: the
// Logic+Logic conclusion should not depend on how branch behaviour is
// modeled.
func BenchmarkAblationPredictorMode(b *testing.B) {
	for i := 0; i < b.N; i++ {
		annotated := uarch.PlanarConfig()
		modeled := uarch.PlanarConfig()
		modeled.Predictor = uarch.DefaultPredictor()

		gain := func(cfg uarch.Config) float64 {
			base, err := synth.RunSuite(context.Background(), cfg, 1, 100_000)
			if err != nil {
				b.Fatal(err)
			}
			full, err := synth.RunSuite(context.Background(), cfg.Apply(uarch.FullFold()), 1, 100_000)
			if err != nil {
				b.Fatal(err)
			}
			return (full.IPC/base.IPC - 1) * 100
		}
		ga := gain(annotated)
		gm := gain(modeled)
		b.ReportMetric(ga, "gainAnnotated%")
		b.ReportMetric(gm, "gainModeled%")
		printOnce(b, i, func() {
			fmt.Printf("\nAblation: fold gain under annotated vs modeled branch prediction\n")
			fmt.Printf("  annotated mispredictions: %+.2f%%\n  gshare front end:         %+.2f%%\n", ga, gm)
		})
	}
}
