// The benchmark harness: one benchmark per table and figure of the
// paper's evaluation. Each prints the same rows or series the paper
// reports (once, on the first iteration) and reports its headline
// number as a benchmark metric, so
//
//	go test -bench=. -benchmem
//
// regenerates the full evaluation. Shapes — who wins, by roughly what
// factor, where crossovers fall — are the reproduction target; see
// EXPERIMENTS.md for measured-vs-paper values.
package diestack_test

import (
	"context"
	"fmt"
	"testing"

	"diestack/internal/core"
	"diestack/internal/memhier"
	"diestack/internal/thermal"
)

// printOnce gates table output to the first benchmark iteration.
func printOnce(b *testing.B, i int, f func()) {
	b.Helper()
	if i == 0 {
		f()
	}
}

// BenchmarkTable2ThermalConstants prints the material table the
// thermal model is built from (Table 2).
func BenchmarkTable2ThermalConstants(b *testing.B) {
	for i := 0; i < b.N; i++ {
		printOnce(b, i, func() {
			fmt.Printf("\nTable 2 — thermal constants:\n")
			fmt.Printf("  Si #1 %g um, Si #2 %g um, Si k=%g W/mK\n",
				thermal.Si1Thickness*1e6, thermal.Si2Thickness*1e6, thermal.Silicon.Conductivity)
			fmt.Printf("  Cu metal %g um k=%g, Al metal %g um k=%g, bond %g um k=%g, ambient %g C\n",
				thermal.CuMetalThickness*1e6, thermal.CuMetal.Conductivity,
				thermal.AlMetalThickness*1e6, thermal.AlMetal.Conductivity,
				thermal.BondThickness*1e6, thermal.BondLayer.Conductivity, thermal.AmbientC)
		})
	}
}

// BenchmarkTable3MachineParameters prints the simulated machine
// (Table 3).
func BenchmarkTable3MachineParameters(b *testing.B) {
	for i := 0; i < b.N; i++ {
		printOnce(b, i, func() {
			fmt.Printf("\nTable 3 — machine parameters:\n")
			for _, o := range core.MemoryOptions() {
				cfg, err := o.HierarchyConfig()
				if err != nil {
					b.Fatal(err)
				}
				fmt.Printf("  %-8s %2d MB %s L2, %d-way, line %dB, tag %d cyc\n",
					o, o.CapacityMB(), cfg.L2Type, cfg.L2.Ways, cfg.L2.LineBytes, cfg.L2.Latency)
			}
			base, _ := core.Planar4MB.HierarchyConfig()
			fmt.Printf("  bank delays: open %d / precharge %d / read %d; bus %.0f GB/s\n",
				base.Memory.Timing.PageOpen, base.Memory.Timing.Precharge,
				base.Memory.Timing.Read, base.BusBytesPerCycle*base.CoreGHz)
		})
	}
}

// BenchmarkFigure3ThermalSensitivity regenerates the conductivity
// sensitivity curves (Figure 3).
func BenchmarkFigure3ThermalSensitivity(b *testing.B) {
	for i := 0; i < b.N; i++ {
		cu, err := core.RunFigure3(context.Background(), core.RunSpec{Grid: 48}, core.SweepCuMetal, nil)
		if err != nil {
			b.Fatal(err)
		}
		bond, err := core.RunFigure3(context.Background(), core.RunSpec{Grid: 48}, core.SweepBond, nil)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(cu[len(cu)-1].PeakC-cu[0].PeakC, "CuRiseC")
		b.ReportMetric(bond[len(bond)-1].PeakC-bond[0].PeakC, "BondRiseC")
		printOnce(b, i, func() {
			fmt.Printf("\nFigure 3 — peak temperature vs conductivity (60 -> 3 W/mK):\n")
			fmt.Printf("  %-18s", "k (W/mK)")
			for _, p := range cu {
				fmt.Printf("%8.0f", p.ConductivityWmK)
			}
			fmt.Printf("\n  %-18s", "Cu metal layers")
			for _, p := range cu {
				fmt.Printf("%8.2f", p.PeakC)
			}
			fmt.Printf("\n  %-18s", "Bonding layer")
			for _, p := range bond {
				fmt.Printf("%8.2f", p.PeakC)
			}
			fmt.Println()
		})
	}
}

// BenchmarkFigure5MemoryStacking regenerates the CPMA/bandwidth sweep
// over the twelve RMS benchmarks and four cache configurations
// (Figure 5), at reference workload scale.
func BenchmarkFigure5MemoryStacking(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := core.RunFigure5(context.Background(), core.RunSpec{Seed: 1, Scale: 1.0})
		if err != nil {
			b.Fatal(err)
		}
		h := res.Headline()
		b.ReportMetric(h.AvgCPMAReductionPct, "avgCPMAred%")
		b.ReportMetric(h.MaxCPMAReductionPct, "maxCPMAred%")
		b.ReportMetric(h.TrafficReductionFactor, "trafficRedX")
		printOnce(b, i, func() {
			fmt.Printf("\nFigure 5 — CPMA (and BW GB/s) per benchmark, capacities 4/12/32/64 MB:\n")
			for r, name := range res.Benchmarks {
				fmt.Printf("  %-8s", name)
				for _, p := range res.Rows[r] {
					fmt.Printf("  %6.3f (%5.2f)", p.CPMA, p.BandwidthGBs)
				}
				fmt.Println()
			}
			fmt.Printf("  headline: avg CPMA reduction %.1f%% (paper 13%%), max %.1f%% on %s (paper ~55%%), traffic /%.1f (paper ~3x), bus -%.2f W (paper ~0.5 W)\n",
				h.AvgCPMAReductionPct, h.MaxCPMAReductionPct, h.MaxReductionBenchmark,
				h.TrafficReductionFactor, h.BusPowerSavingW)
		})
	}
}

// BenchmarkFigure6BaselineThermal regenerates the planar power and
// temperature maps (Figure 6).
func BenchmarkFigure6BaselineThermal(b *testing.B) {
	for i := 0; i < b.N; i++ {
		pd, tm, err := core.Figure6Maps(context.Background(), core.RunSpec{Grid: 64})
		if err != nil {
			b.Fatal(err)
		}
		peak, low := -1e9, 1e9
		for _, row := range tm {
			for _, v := range row {
				if v > peak {
					peak = v
				}
				if v < low {
					low = v
				}
			}
		}
		b.ReportMetric(peak, "peakC")
		var maxPD float64
		for _, row := range pd {
			for _, v := range row {
				if v > maxPD {
					maxPD = v
				}
			}
		}
		printOnce(b, i, func() {
			fmt.Printf("\nFigure 6 — baseline planar maps: hottest %.2f degC (paper 88.35), coolest %.2f (paper 59), peak density %.2f W/mm2\n",
				peak, low, maxPD/1e6)
		})
	}
}

// BenchmarkFigure7StackPower prints the four configurations' power
// budgets (Figure 7).
func BenchmarkFigure7StackPower(b *testing.B) {
	paper := map[core.MemoryOption]float64{
		core.Planar4MB: 92, core.Stacked12MB: 106,
		core.Stacked32MB: 91.6, core.Stacked64MB: 98.2,
	}
	for i := 0; i < b.N; i++ {
		printOnce(b, i, func() {
			fmt.Printf("\nFigure 7 — power budgets:\n")
			for _, o := range core.MemoryOptions() {
				fp, err := o.Floorplan()
				if err != nil {
					b.Fatal(err)
				}
				fmt.Printf("  %-8s %6.1f W (paper %.1f)\n", o, fp.TotalPower(), paper[o])
			}
		})
	}
}

// BenchmarkFigure8StackThermal regenerates the memory-stacking peak
// temperatures (Figure 8a).
func BenchmarkFigure8StackThermal(b *testing.B) {
	paper := map[core.MemoryOption]float64{
		core.Planar4MB: 88.35, core.Stacked12MB: 92.85,
		core.Stacked32MB: 88.43, core.Stacked64MB: 90.27,
	}
	for i := 0; i < b.N; i++ {
		rows, err := core.RunFigure8(context.Background(), core.RunSpec{Grid: 64})
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rows {
			if r.Option == core.Stacked32MB {
				b.ReportMetric(r.PeakC, "peak32MBC")
			}
		}
		printOnce(b, i, func() {
			fmt.Printf("\nFigure 8(a) — peak temperatures:\n")
			for _, r := range rows {
				fmt.Printf("  %-8s %6.2f degC (paper %.2f)\n", r.Option, r.PeakC, paper[r.Option])
			}
		})
	}
}

// BenchmarkTable4PipelineGains regenerates the per-functionality
// pipeline elimination gains (Table 4).
func BenchmarkTable4PipelineGains(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t4, err := core.RunTable4(context.Background(), core.Table4Request{Spec: core.RunSpec{Seed: 1}, Instructions: 200_000})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(t4.TotalGainPct, "totalGain%")
		b.ReportMetric(t4.StagesEliminatedPct, "stagesGone%")
		printOnce(b, i, func() {
			fmt.Printf("\nTable 4 — Logic+Logic pipeline gains:\n")
			for _, r := range t4.Rows {
				fmt.Printf("  %-26s %5.1f%% of stages  %+6.2f%% perf (paper ~%.2f%%)\n",
					r.Name, r.StagesPct, r.GainPct, r.PaperGainPct)
			}
			fmt.Printf("  Total: %.1f%% of stages, %+.2f%% perf (paper ~25%% / ~15%%)\n", t4.StagesEliminatedPct, t4.TotalGainPct)
		})
	}
}

// BenchmarkFigure11LogicThermal regenerates the Logic+Logic thermal
// comparison (Figure 11).
func BenchmarkFigure11LogicThermal(b *testing.B) {
	paper := map[core.LogicOption]float64{
		core.LogicPlanar: 98.6, core.Logic3D: 112.5, core.Logic3DWorst: 124.75,
	}
	for i := 0; i < b.N; i++ {
		rows, err := core.RunFigure11(context.Background(), core.RunSpec{Grid: 64})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(rows[1].PeakC-rows[0].PeakC, "riseC")
		printOnce(b, i, func() {
			fmt.Printf("\nFigure 11 — Logic+Logic peak temperatures:\n")
			for _, r := range rows {
				fmt.Printf("  %-13s %7.2f degC (paper %.2f), %6.1f W, density %.2fx\n",
					r.Option, r.PeakC, paper[r.Option], r.TotalPowerW, r.DensityRatio)
			}
		})
	}
}

// BenchmarkTable5VoltageScaling regenerates the V/f scaling scenarios
// (Table 5).
func BenchmarkTable5VoltageScaling(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := core.RunTable5(context.Background(), core.Table5Request{Spec: core.RunSpec{Grid: 64}})
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rows {
			if r.Name == "Same Temp" {
				b.ReportMetric(r.PowerPct, "sameTempPwr%")
				b.ReportMetric(r.PerfPct, "sameTempPerf%")
			}
		}
		printOnce(b, i, func() {
			fmt.Printf("\nTable 5 — V/f scaling (paper: Same Temp 66%% power / 108%% perf):\n")
			for _, r := range rows {
				fmt.Printf("  %-11s %6.1f W (%3.0f%%)  perf %3.0f%%  Vcc %.2f  freq %.2f\n",
					r.Name, r.PowerW, r.PowerPct, r.PerfPct, r.Vcc, r.Freq)
			}
		})
	}
}

// BenchmarkHierarchySimulator measures the raw replay throughput of
// the memory hierarchy simulator (references per second), the
// engineering number that bounds every Figure 5 run.
func BenchmarkHierarchySimulator(b *testing.B) {
	cfg, _ := memhier.ConfigByCapacity(32)
	recs := streamTrace(200_000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sim, err := memhier.New(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := sim.Run(context.Background(), sliceStream(recs), memhier.RunOptions{}); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(len(recs)), "records/op")
}
