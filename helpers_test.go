package diestack_test

import (
	"diestack/internal/trace"
)

// streamTrace builds a simple two-core streaming trace for throughput
// benchmarks.
func streamTrace(n int) []trace.Record {
	recs := make([]trace.Record, n)
	for i := range recs {
		recs[i] = trace.Record{
			ID: uint64(i), Dep: trace.NoDep,
			Addr: uint64(i) * 64, PC: 0x400000,
			CPU: uint8(i % 2), Kind: trace.Load, Reps: 7,
		}
	}
	return recs
}

func sliceStream(recs []trace.Record) trace.Stream {
	return trace.NewSliceStream(recs)
}
