#!/bin/sh
# verify.sh — the repo's full verification gate: static analysis,
# build, and race-enabled tests. Run before every push.
set -eu
cd "$(dirname "$0")"

echo "== go vet =="
go vet ./...

echo "== stacklint =="
# The repo's own analyzer suite: context-first entry points, no
# deprecated references, deterministic simulation packages, annotated
# hot paths allocation-free, obs instruments touched only via methods,
# plus the CFG/dataflow concurrency checks (locksafe, goleak,
# atomicmix, wirestable). First assert the full suite is registered —
# a silently dropped analyzer passes every other gate.
lintlist=$(go run ./cmd/stacklint -list)
for a in atomicmix ctxfirst deprecatedcall determinism goleak \
         hotpathalloc locksafe obsaccess wirestable; do
    echo "$lintlist" | grep -q "^$a " || {
        echo "verify: analyzer $a missing from stacklint -list" >&2
        exit 1
    }
done
go run ./cmd/stacklint ./...

echo "== go build =="
go build ./...

echo "== go test -race =="
go test -race ./...

echo "== benchmark smoke =="
# One iteration of every internal benchmark: catches benchmarks that
# no longer compile or crash without paying for stable timings. The
# root-package figure benchmarks replay paper-scale workloads and are
# exercised by tests already, so the smoke stays inside internal/.
go test -run '^$' -bench . -benchtime 1x ./internal/... >/dev/null

echo "== multigrid solver smoke =="
# One short multigrid solve through the CLI: the -solver flag must
# reach the thermal substrate, and the metrics snapshot must carry the
# thermal_mg_* family (V-cycle and per-level sweep counters) alongside
# the regular thermal family.
mgtmp=$(mktemp -d)
trap 'rm -rf "$mgtmp"' EXIT
go run ./cmd/thermal3d -baseline -grid 32 -solver multigrid \
    -metrics-out "$mgtmp/mg-metrics.jsonl" >/dev/null
grep -q thermal_mg_cycles "$mgtmp/mg-metrics.jsonl"
go run ./internal/obs/cmd/checksnap -families thermal,thermal_mg "$mgtmp/mg-metrics.jsonl"
rm -rf "$mgtmp"

echo "== supervised campaign smoke =="
# A small supervised sweep: every job must finish OK, the manifest must
# be written, and the -metrics-out JSONL must carry all five metric
# families — harness end to end from the CLI, observability included.
tmpdir=$(mktemp -d)
trap 'rm -rf "$tmpdir"' EXIT
go run ./cmd/stackmem -campaign -bench gauss -scale 0.05 -grid 16 \
    -jobs 4 -retries 1 -manifest "$tmpdir/manifest.json" \
    -metrics-out "$tmpdir/metrics.jsonl"
grep -q '"status": "ok"' "$tmpdir/manifest.json"
test -s "$tmpdir/metrics.jsonl"
go run ./internal/obs/cmd/checksnap "$tmpdir/metrics.jsonl"

echo "== distributed campaign smoke =="
# One coordinator, two loopback workers, one SIGKILLed mid-campaign,
# and deterministic chaos (drops, torn writes, latency) on the
# surviving worker's link: the dead worker's leases must expire and
# re-issue, the survivor must reconnect through its injected faults,
# and the merged manifest must come out byte-identical to the
# single-process manifest the supervised smoke above wrote for the
# same spec.
go build -o "$tmpdir/stackmem" ./cmd/stackmem
port=$((20000 + $$ % 20000))
"$tmpdir/stackmem" -campaign -bench gauss -scale 0.05 -grid 16 \
    -serve "127.0.0.1:$port" -lease-ttl 2s \
    -manifest "$tmpdir/merged.json" \
    -metrics-out "$tmpdir/dist-metrics.jsonl" 2>"$tmpdir/coord.log" &
coord=$!
"$tmpdir/stackmem" -campaign -worker "127.0.0.1:$port" -worker-name smoke-w1 \
    -jobs 2 -retries 1 \
    -chaos-seed 7 -chaos-drop 4 -chaos-partial 3 -chaos-latency 1ms \
    -metrics-out "$tmpdir/w1-metrics.jsonl" 2>"$tmpdir/w1.log" &
w1=$!
"$tmpdir/stackmem" -campaign -worker "127.0.0.1:$port" -worker-name smoke-w2 \
    -retries 1 2>"$tmpdir/w2.log" &
w2=$!
sleep 1
kill -9 "$w2" 2>/dev/null || true
wait "$coord"
wait "$w1"
cmp "$tmpdir/manifest.json" "$tmpdir/merged.json"
grep -q dist_lease_grants "$tmpdir/dist-metrics.jsonl"
# The coordinator carries the dist_* counters (grants, drains,
# violations); the chaos-injected worker additionally carries the
# chaos_* and reconnect counters.
go run ./internal/obs/cmd/checksnap -families dist "$tmpdir/dist-metrics.jsonl"
go run ./internal/obs/cmd/checksnap -families dist,chaos "$tmpdir/w1-metrics.jsonl"

echo "== chaos soak =="
# The ISSUE 7 acceptance run: three in-process workers under sustained
# injected network faults, one coordinator drained mid-campaign and
# restarted on the same journal; the merged manifest must be
# byte-identical to the single-process run. Tagged so the regular test
# sweep above stays fault-free; hard -timeout bounds a hung soak.
go test -race -count=1 -tags soak -run TestChaosSoak -timeout 240s ./internal/dist/

echo "== stackd service smoke =="
# The experiment service end to end: POST the same spec twice (the
# second must be served from the result cache) and a concurrent
# identical cold pair (singleflight must merge the twin into the
# leader's solve), then drain with SIGTERM. The final metrics snapshot
# must carry the stackd_* family with the hit and merge counters
# proving both paths fired.
go build -o "$tmpdir/stackd" ./cmd/stackd
sport=$((21000 + $$ % 20000))
"$tmpdir/stackd" -addr "127.0.0.1:$sport" \
    -metrics-out "$tmpdir/stackd-metrics.jsonl" 2>"$tmpdir/stackd.log" &
stackd=$!
trap 'kill "$stackd" 2>/dev/null || true; rm -rf "$tmpdir"' EXIT
for _ in $(seq 1 50); do
    curl -sf "http://127.0.0.1:$sport/healthz" >/dev/null 2>&1 && break
    sleep 0.1
done
curl -sf -X POST "http://127.0.0.1:$sport/v1/experiments/memory-thermal" \
    -d '{"spec":{"grid":16},"params":{"capacity_mb":32}}' >"$tmpdir/stackd-a.json"
curl -sf -X POST "http://127.0.0.1:$sport/v1/experiments/memory-thermal" \
    -d '{"spec":{"grid":16},"params":{"capacity_mb":32}}' >"$tmpdir/stackd-b.json"
cmp "$tmpdir/stackd-a.json" "$tmpdir/stackd-b.json"
curl -sf -X POST "http://127.0.0.1:$sport/v1/experiments/fig6" \
    -d '{"spec":{"grid":48}}' >"$tmpdir/stackd-c.json" &
pair1=$!
curl -sf -X POST "http://127.0.0.1:$sport/v1/experiments/fig6" \
    -d '{"spec":{"grid":48}}' >"$tmpdir/stackd-d.json" &
pair2=$!
wait "$pair1"
wait "$pair2"
cmp "$tmpdir/stackd-c.json" "$tmpdir/stackd-d.json"
kill -TERM "$stackd"
wait "$stackd"
go run ./internal/obs/cmd/checksnap -families stackd \
    -min stackd_cache_hits=1 -min stackd_inflight_merged=1 \
    "$tmpdir/stackd-metrics.jsonl"

echo "== checkpoint/resume smoke =="
go run ./cmd/stackmem -checkpoint "$tmpdir/run.ckpt" -checkpoint-every 20000 \
    -bench gauss -scale 0.1 -capacity 32 >"$tmpdir/full.out"
go run ./cmd/stackmem -checkpoint "$tmpdir/run.ckpt" -resume \
    -bench gauss -scale 0.1 -capacity 32 >"$tmpdir/resumed.out" 2>/dev/null
cmp "$tmpdir/full.out" "$tmpdir/resumed.out"

echo "verify: OK"
