#!/bin/sh
# verify.sh — the repo's full verification gate: static analysis,
# build, and race-enabled tests. Run before every push.
set -eu
cd "$(dirname "$0")"

echo "== go vet =="
go vet ./...

echo "== go build =="
go build ./...

echo "== go test -race =="
go test -race ./...

echo "verify: OK"
