// thermal_explore: study how stack material and construction choices
// move the peak temperature of a two-die assembly.
//
// The example builds custom thermal stacks directly (not through the
// preset experiments): it sweeps the die-to-die bonding technology,
// compares thinning choices for the second die, and tries placing the
// hot die away from the heat sink — the decision the paper warns
// about.
//
// Run with: go run ./examples/thermal_explore
package main

import (
	"context"
	"fmt"
	"log"

	"diestack/internal/floorplan"
	"diestack/internal/thermal"
)

const grid = 48

func solve(s *thermal.Stack) *thermal.Field {
	f, err := thermal.Solve(context.Background(), s, thermal.SolveOptions{})
	if err != nil {
		log.Fatal(err)
	}
	return f
}

func main() {
	fp := floorplan.Core2DuoStacked12MB()
	pkgW, pkgH := thermal.DefaultPackageW, thermal.DefaultPackageH
	cpu := fp.PowerMapCentered(0, grid, grid, pkgW, pkgH)
	sram := fp.PowerMapCentered(1, grid, grid, pkgW, pkgH)
	opt := thermal.StackOptions{Nx: grid, Ny: grid}

	// 1. Bonding technology: from Cu-Cu thermocompression (excellent)
	//    down to polymer adhesives (poor).
	fmt.Println("bond technology sweep (CPU + stacked SRAM):")
	bonds := []struct {
		name string
		k    float64
	}{
		{"Cu-Cu bond, dense d2d vias", 60},
		{"hybrid oxide bond", 25},
		{"microbump + underfill", 8},
		{"polymer adhesive", 3},
	}
	for _, b := range bonds {
		o := opt
		o.BondK = b.k
		s := thermal.ThreeDStack(fp.DieW, fp.DieH,
			thermal.LogicDie(cpu), thermal.SRAMDie(sram), o)
		fmt.Printf("  %-28s k=%4.0f W/mK  peak %.2f degC\n", b.name, b.k, solve(s).Peak())
	}

	// 2. Orientation: the paper places the high-power die next to the
	//    heat sink. Swap the dies and measure why.
	fmt.Println("\ndie ordering (who sits next to the sink?):")
	good := thermal.ThreeDStack(fp.DieW, fp.DieH,
		thermal.LogicDie(cpu), thermal.SRAMDie(sram), opt)
	bad := thermal.ThreeDStack(fp.DieW, fp.DieH,
		thermal.LogicDie(sram), thermal.SRAMDie(cpu), opt)
	fmt.Printf("  CPU next to sink (paper's rule): peak %.2f degC\n", solve(good).Peak())
	fmt.Printf("  SRAM next to sink (inverted):    peak %.2f degC\n", solve(bad).Peak())

	// 3. A custom stack, layer by layer: what if the second die keeps
	//    its full 750 um of bulk silicon instead of being thinned to
	//    20 um? Thick silicon under the bond both spreads and insulates.
	fmt.Println("\nsecond-die thinning (custom layer list):")
	for _, th := range []float64{20e-6, 100e-6, 300e-6, 750e-6} {
		die := thermal.CenteredDie(pkgW, pkgH, fp.DieW, fp.DieH)
		layers := []thermal.Layer{
			{Name: "heat sink", Thickness: 5e-3, Material: thermal.HeatSinkMetal},
			{Name: "TIM2", Thickness: 25e-6, Material: thermal.TIM},
			{Name: "IHS", Thickness: 3e-3, Material: thermal.CopperIHS},
			{Name: "TIM1", Thickness: 25e-6, Material: thermal.TIM, Extent: die},
			{Name: "bulk Si #1", Thickness: thermal.Si1Thickness, Material: thermal.Silicon, Extent: die},
			{Name: "active #1", Thickness: thermal.ActiveThickness, Material: thermal.Silicon, Extent: die, Power: cpu},
			{Name: "metal #1", Thickness: thermal.CuMetalThickness, Material: thermal.CuMetal, Extent: die},
			{Name: "bond", Thickness: thermal.BondThickness, Material: thermal.BondLayer, Extent: die},
			{Name: "metal #2", Thickness: thermal.CuMetalThickness, Material: thermal.CuMetal, Extent: die},
			{Name: "active #2", Thickness: thermal.ActiveThickness, Material: thermal.Silicon, Extent: die, Power: sram},
			{Name: "bulk Si #2", Thickness: th, Material: thermal.Silicon, Extent: die},
			{Name: "C4/underfill", Thickness: 80e-6, Material: thermal.Underfill, Extent: die},
			{Name: "package", Thickness: 1.2e-3, Material: thermal.PackageSub},
			{Name: "socket", Thickness: 2e-3, Material: thermal.Socket},
			{Name: "motherboard", Thickness: 1.6e-3, Material: thermal.Motherboard},
		}
		s := &thermal.Stack{
			Width: pkgW, Height: pkgH, Nx: grid, Ny: grid,
			Layers:   layers,
			TopH:     thermal.DefaultTopH,
			BottomH:  thermal.DefaultBottomH,
			AmbientC: thermal.AmbientC,
		}
		fmt.Printf("  Si #2 = %3.0f um: peak %.2f degC\n", th*1e6, solve(s).Peak())
	}
	fmt.Println("\nThe bond layer and die order dominate; thinning mostly matters for TSV construction.")
}
