// dramcache: size a stacked DRAM cache for your own workload.
//
// This example builds a custom dependency-annotated trace by hand — a
// two-threaded out-of-core stencil solver that is not part of the RMS
// suite — and sweeps the stacked-DRAM capacity to find the knee of the
// CPMA and bus-bandwidth curves. It demonstrates the trace format and
// the memory-hierarchy simulator as reusable building blocks.
//
// Run with: go run ./examples/dramcache
package main

import (
	"context"
	"fmt"
	"log"

	"diestack/internal/memhier"
	"diestack/internal/trace"
)

// stencilTrace emits a two-threaded 5-point stencil over an n x n grid
// of float64 (row-major), each thread sweeping half the rows twice.
// Every output depends on its center-point load, and rows are streamed
// line by line — the classic capacity-bound access pattern.
func stencilTrace(n, sweeps int) []trace.Record {
	const lineBytes = 64
	rowBytes := uint64(n) * 8
	gridBase := uint64(1) << 30
	outBase := uint64(2) << 30

	var recs []trace.Record
	id := uint64(0)
	emit := func(cpu uint8, kind trace.Kind, addr, dep uint64, reps uint8) uint64 {
		recs = append(recs, trace.Record{
			ID: id, Dep: dep, Addr: addr, PC: 0x400000, CPU: cpu, Kind: kind, Reps: reps,
		})
		id++
		return id - 1
	}

	for s := 0; s < sweeps; s++ {
		for i := 1; i < n-1; i++ {
			cpu := uint8(0)
			if i >= n/2 {
				cpu = 1
			}
			row := gridBase + uint64(i)*rowBytes
			up := gridBase + uint64(i-1)*rowBytes
			down := gridBase + uint64(i+1)*rowBytes
			for off := uint64(0); off+lineBytes <= rowBytes; off += lineBytes {
				center := emit(cpu, trace.Load, row+off, trace.NoDep, 7)
				emit(cpu, trace.Load, up+off, trace.NoDep, 7)
				emit(cpu, trace.Load, down+off, trace.NoDep, 7)
				// The write of the output line waits for the center load.
				emit(cpu, trace.Store, outBase+uint64(i)*rowBytes+off, center, 7)
			}
		}
	}
	return recs
}

func main() {
	// A 1280 x 1280 grid: ~12.5 MB input + ~12.5 MB output. Too big for
	// 4 MB, comfortable in 32 MB.
	recs := stencilTrace(1280, 2)
	if err := trace.Validate(context.Background(), trace.NewSliceStream(recs)); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("custom stencil trace: %d records\n\n", len(recs))
	fmt.Printf("%-10s %8s %10s %12s\n", "capacity", "CPMA", "BW GB/s", "traffic MB")

	for _, mb := range []int{4, 8, 16, 32, 64} {
		cfg, ok := memhier.ConfigByCapacity(mb)
		if !ok {
			log.Fatalf("no configuration for %d MB", mb)
		}
		sim, err := memhier.New(cfg)
		if err != nil {
			log.Fatal(err)
		}
		res, err := sim.Run(context.Background(), trace.NewSliceStream(recs), memhier.RunOptions{})
		if err != nil {
			log.Fatal(err)
		}
		kind := "DRAM"
		if cfg.L2Type == memhier.L2SRAM {
			kind = "SRAM"
		}
		fmt.Printf("%3d MB %-4s %8.3f %10.2f %12.1f\n",
			mb, kind, res.CPMA, res.BandwidthGBs, float64(res.OffDieBytes)/(1<<20))
	}
	fmt.Println("\nThe knee sits where the stacked capacity first covers the ~25 MB working set.")
}
