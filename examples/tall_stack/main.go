// tall_stack: go beyond the paper's two-die limit.
//
// The paper notes that "it is also possible to stack many die" but
// evaluates only two-die stacks. This example climbs the ladder: a
// CPU with one, two, then three 64 MB DRAM dies stacked behind it —
// checking the steady-state thermal price of each rung, the memory
// capacity it buys, and (via the transient solver) how long the
// assembly takes to heat up after a cold start.
//
// Run with: go run ./examples/tall_stack
package main

import (
	"context"
	"fmt"
	"log"

	"diestack/internal/core"
	"diestack/internal/floorplan"
	"diestack/internal/thermal"
)

const grid = 48

func main() {
	// Steady state: one rung at a time.
	fmt.Println("capacity ladder (steady state):")
	pts, err := core.RunMultiDieSweep(context.Background(),
		core.MultiDieRequest{Spec: core.RunSpec{Grid: grid}, MaxDies: 4})
	if err != nil {
		log.Fatal(err)
	}
	base, err := core.RunMemoryThermal(context.Background(), core.RunSpec{Grid: grid}, core.Planar4MB)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  planar CPU only:           peak %6.2f degC, %5.1f W\n", base.PeakC, base.TotalPowerW)
	for _, p := range pts {
		fmt.Printf("  CPU + %d x 64MB (%3d MB):   peak %6.2f degC, %5.1f W\n",
			p.Dies-1, p.CapacityMB, p.PeakC, p.TotalPowerW)
	}

	// And the memory system: does a 128 MB cache still work?
	cfg, err := core.MultiDieHierarchyConfig(2)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\n128 MB two-die DRAM cache: %d banks, %d MB, valid config: %v\n",
		cfg.DRAMArray.Banks, cfg.L2.SizeBytes>>20, cfg.Validate() == nil)

	// Transient: how fast does the four-die stack heat up from a cold
	// start? The die responds in seconds; the sink mass dominates.
	fp := floorplan.Core2DuoPlanar()
	pkgW, pkgH := thermal.DefaultPackageW, thermal.DefaultPackageH
	cpu := thermal.LogicDie(fp.PowerMapCentered(0, grid, grid, pkgW, pkgH))
	die := thermal.CenteredDie(pkgW, pkgH, fp.DieW, fp.DieH)
	dram := func() thermal.DieSpec {
		pm := thermal.NewPowerMap(grid, grid)
		cw, ch := pkgW/grid, pkgH/grid
		pm.FillRect(int(die.X/cw), int(die.Y/ch), int((die.X+die.W)/cw), int((die.Y+die.H)/ch),
			floorplan.DRAM64MBPowerW)
		return thermal.DRAMDie(pm)
	}
	stack, err := thermal.MultiDieStack(fp.DieW, fp.DieH,
		[]thermal.DieSpec{cpu, dram(), dram(), dram()},
		thermal.StackOptions{Nx: grid, Ny: grid})
	if err != nil {
		log.Fatal(err)
	}
	steady, err := thermal.Solve(context.Background(), stack, thermal.SolveOptions{})
	if err != nil {
		log.Fatal(err)
	}
	tr, err := thermal.SolveTransient(context.Background(), stack, thermal.TransientOptions{Dt: 1, Steps: 120})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nfour-die stack warm-up (step power at t=0, steady peak %.2f degC):\n", steady.Peak())
	for _, sec := range []int{1, 5, 15, 30, 60, 120} {
		fmt.Printf("  t=%4ds: peak %6.2f degC, stored %6.0f J\n",
			sec, tr.PeakC[sec-1], tr.StoredJ[sec-1])
	}
	tau := tr.TimeToFraction(thermal.AmbientC, steady.Peak(), 0.632)
	fmt.Printf("  thermal time constant (63.2%% of the rise): ~%.0f s — the heat sink's mass, not the dies'\n", tau)
}
