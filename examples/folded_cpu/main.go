// folded_cpu: explore which pipe-stage eliminations pay off when
// folding a deeply pipelined CPU onto two dies.
//
// A real 3D floorplanning effort cannot fold everything at once; this
// example ranks the Table 4 functionality groups by measured IPC gain
// on a chosen workload class, then applies them cumulatively
// (greedily) and reports the performance trajectory alongside the
// paper's voltage-scaling options for spending the gain.
//
// Run with: go run ./examples/folded_cpu
package main

import (
	"context"
	"fmt"
	"log"
	"sort"

	"diestack/internal/power"
	"diestack/internal/uarch"
	"diestack/internal/uarch/synth"
)

func main() {
	const n = 120_000
	cfg := uarch.PlanarConfig()

	// Use the FP-heavy kernels class: the fold decisions differ
	// sharply from an integer-heavy target.
	prof, ok := synth.ByName("kernels")
	if !ok {
		log.Fatal("profile registry is missing kernels")
	}
	prog := prof.Generate(7, n)
	base, err := uarch.Run(context.Background(), cfg, prog)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("planar %s IPC: %.3f (mispredict penalty %d cycles)\n\n",
		prof.Name, base.IPC, cfg.MispredictPenalty())

	// Rank each group's standalone gain.
	type gain struct {
		name string
		fold uarch.Fold
		pct  float64
	}
	var gains []gain
	for _, g := range synth.Table4Groups() {
		res, err := uarch.Run(context.Background(), cfg.Apply(g.Fold), prog)
		if err != nil {
			log.Fatal(err)
		}
		gains = append(gains, gain{g.Name, g.Fold, (res.IPC/base.IPC - 1) * 100})
	}
	sort.Slice(gains, func(i, j int) bool { return gains[i].pct > gains[j].pct })

	fmt.Println("standalone gains, best first:")
	for _, g := range gains {
		fmt.Printf("  %-26s %+6.2f%%\n", g.name, g.pct)
	}

	// Apply them cumulatively in that order.
	fmt.Println("\ncumulative fold trajectory:")
	var acc uarch.Fold
	for i, g := range gains {
		acc = mergeFolds(acc, g.fold)
		res, err := uarch.Run(context.Background(), cfg.Apply(acc), prog)
		if err != nil {
			log.Fatal(err)
		}
		removed, total := cfg.StagesEliminated(acc)
		fmt.Printf("  +%-26s IPC %.3f (%+5.2f%%), %2d/%d stages gone\n",
			g.name, res.IPC, (res.IPC/base.IPC-1)*100, removed, total)
		if i == len(gains)-1 {
			// Spend the final gain: the paper's Table 5 options.
			laws := power.PaperLaws()
			design := power.Design{
				BasePowerW:  147,
				PowerFactor: 0.85,
				PerfGainPct: (res.IPC/base.IPC - 1) * 100,
			}
			fmt.Println("\nways to spend it (V/f scaling):")
			pt, err := laws.At(design, "same frequency", 1, 1)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("  keep the clock:   %+.0f%% perf at %.0f W\n", pt.PerfPct-100, pt.PowerW)
			f := laws.FreqForPerf(design, 100)
			pt, err = laws.At(design, "same performance", laws.VccForFreq(f), f)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("  keep the perf:    %.0f W (%.0f%% of baseline) at Vcc %.2f\n",
				pt.PowerW, pt.PowerPct, pt.Vcc)
		}
	}
}

// mergeFolds ORs two fold selections.
func mergeFolds(a, b uarch.Fold) uarch.Fold {
	return uarch.Fold{
		FrontEnd:    a.FrontEnd || b.FrontEnd,
		TraceCache:  a.TraceCache || b.TraceCache,
		Rename:      a.Rename || b.Rename,
		FPLatency:   a.FPLatency || b.FPLatency,
		IntRF:       a.IntRF || b.IntRF,
		DCache:      a.DCache || b.DCache,
		Loop:        a.Loop || b.Loop,
		RetireDealc: a.RetireDealc || b.RetireDealc,
		FPLoad:      a.FPLoad || b.FPLoad,
		StoreLife:   a.StoreLife || b.StoreLife,
	}
}
