// Quickstart: evaluate one 3D stacking design end to end — replay a
// memory-intensive RMS workload against the 32 MB stacked-DRAM cache,
// compare it with the planar baseline, and solve the thermal stack.
//
// Run with: go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"

	"diestack/internal/core"
	"diestack/internal/workload"
)

func main() {
	// Pick the Gauss-Jordan solver: a 16 MB working set that thrashes
	// the planar 4 MB cache and fits the stacked 32 MB DRAM.
	bench, ok := workload.ByName("gauss")
	if !ok {
		log.Fatal("benchmark registry is missing gauss")
	}

	ctx := context.Background()
	spec := core.RunSpec{Seed: 1, Scale: 1.0, Grid: 48}
	baseline, err := core.RunMemoryPerf(ctx, spec, core.Planar4MB, bench)
	if err != nil {
		log.Fatal(err)
	}
	stacked, err := core.RunMemoryPerf(ctx, spec, core.Stacked32MB, bench)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("gauss on the planar 4MB baseline: CPMA %.2f, off-die %.2f GB/s\n",
		baseline.CPMA, baseline.BandwidthGBs)
	fmt.Printf("gauss on the 3D 32MB DRAM cache:  CPMA %.2f, off-die %.2f GB/s\n",
		stacked.CPMA, stacked.BandwidthGBs)
	fmt.Printf("-> %.0f%% fewer cycles per access, %.1fx less bus traffic\n\n",
		(1-stacked.CPMA/baseline.CPMA)*100,
		float64(baseline.OffDieBytes)/float64(stacked.OffDieBytes))

	// And the thermal cost of stacking that DRAM die?
	for _, opt := range []core.MemoryOption{core.Planar4MB, core.Stacked32MB} {
		th, err := core.RunMemoryThermal(ctx, spec, opt)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-8s peak %.2f degC at %.1f W total\n", opt, th.PeakC, th.TotalPowerW)
	}
	fmt.Println("\nThe stacked cache buys a large memory-system win for a near-zero thermal cost.")
}
